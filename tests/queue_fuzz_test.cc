// Randomized robustness sweep over every queue discipline: arbitrary packet
// streams (mixed types, sizes, paths, timestamps) must never violate the
// queue invariants — no crash, byte/packet conservation, buffer bounds.
//
// Two bodies share the scheme x seed grid:
//   * InvariantsUnderRandomTraffic — uniform random enqueue/dequeue mix;
//   * ModeTransitionInterleavings — phase-structured traffic (bursts, drains,
//     quiet gaps jumping whole control intervals) with FLoc faults (reboot,
//     secret rotation) and forced control passes interleaved, audited every
//     phase; for FLoc the defense-event journal is attached and the recorded
//     mode-transition chain is checked for validity.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "netsim/simulator.h"
#include "telemetry/telemetry.h"
#include "topology/defense_factory.h"
#include "util/rng.h"
#include "util/seed.h"

namespace floc {
namespace {

struct FuzzCase {
  DefenseScheme scheme;
  std::uint64_t seed;
};

class QueueFuzz : public ::testing::TestWithParam<FuzzCase> {};

// Random packet shaped like the scenario mix: mostly data, some handshake
// types, 1-3 hop origin paths.
Packet random_packet(Rng& rng) {
  Packet p;
  p.flow = rng.uniform_int(40);
  p.src = static_cast<HostAddr>(rng.uniform_int(20) + 1);
  p.dst = static_cast<HostAddr>(rng.uniform_int(5) + 100);
  const auto type_pick = rng.uniform_int(10);
  p.type = type_pick < 7   ? PacketType::kData
           : type_pick < 8 ? PacketType::kSyn
           : type_pick < 9 ? PacketType::kAck
                           : PacketType::kSynAck;
  p.size_bytes = p.type == PacketType::kData
                     ? static_cast<int>(rng.uniform_int(1461) + 40)
                     : 40;
  p.seq = rng.uniform_int(1000);
  PathId path;
  const auto hops = rng.uniform_int(3) + 1;
  for (std::uint64_t h = 0; h < hops; ++h) {
    path.push_origin(static_cast<AsNumber>(rng.uniform_int(6) + 1));
  }
  p.path = path;
  return p;
}

TEST_P(QueueFuzz, InvariantsUnderRandomTraffic) {
  const FuzzCase fc = GetParam();
  DefenseFactoryConfig cfg;
  cfg.link_bandwidth = mbps(10);
  cfg.buffer_packets = 64;
  cfg.seed = fc.seed;
  auto q = make_defense_queue(fc.scheme, std::move(cfg));

  Rng rng(fc.seed * 7919 + 13);
  std::uint64_t admitted = 0, serviced = 0, offered = 0;
  std::uint64_t admitted_bytes = 0, serviced_bytes = 0;
  double t = 0.0;

  for (int i = 0; i < 30000; ++i) {
    t += rng.exponential(2e-4);
    const double action = rng.uniform();
    if (action < 0.7) {
      Packet p = random_packet(rng);
      ++offered;
      const int bytes = p.size_bytes;
      if (q->enqueue(std::move(p), t)) {
        ++admitted;
        admitted_bytes += static_cast<std::uint64_t>(bytes);
      }
    } else {
      auto out = q->dequeue(t);
      if (out.has_value()) {
        ++serviced;
        serviced_bytes += static_cast<std::uint64_t>(out->size_bytes);
      }
    }
    ASSERT_LE(q->packet_count(), 64u);
  }

  // Conservation.
  EXPECT_EQ(admitted, serviced + q->packet_count());
  EXPECT_EQ(admitted_bytes, serviced_bytes + q->byte_count());
  EXPECT_EQ(offered, admitted + q->drops());
  // Drain completely.
  while (auto p = q->dequeue(t)) {
    ++serviced;
  }
  EXPECT_EQ(q->packet_count(), 0u);
  EXPECT_EQ(q->byte_count(), 0u);
  EXPECT_TRUE(q->empty());
}

// Phase-structured fuzz: alternating bursts (enqueue-heavy, drives the
// FlocQueue toward kCongested/kFlooding), drains (dequeue-heavy, back toward
// kUncongested) and quiet gaps whose time jumps cross several control
// intervals, with reboot()/rotate_secret() faults and forced control passes
// racing the traffic. Every phase ends with the discipline's own audit()
// plus external conservation checks; for FLoc the journal's mode-transition
// chain must be a valid walk (modes in range, time/seq monotone, every
// recorded transition an actual change).
TEST_P(QueueFuzz, ModeTransitionInterleavings) {
  const FuzzCase fc = GetParam();
  DefenseFactoryConfig cfg;
  cfg.link_bandwidth = mbps(10);
  cfg.buffer_packets = 64;
  cfg.seed = fc.seed;
  cfg.floc.control_interval = 0.05;  // many mode decisions per run
  auto q = make_defense_queue(fc.scheme, std::move(cfg));
  auto* fq = dynamic_cast<FlocQueue*>(q.get());
  ASSERT_EQ(fq != nullptr, fc.scheme == DefenseScheme::kFloc);

  telemetry::Telemetry tel;
  if (fq != nullptr) fq->attach_telemetry(&tel);

  Rng rng(derive_seed(fc.seed, 0, /*salt=*/0xF022));
  std::uint64_t admitted = 0, serviced = 0, offered = 0;
  std::uint64_t admitted_bytes = 0, serviced_bytes = 0;
  std::uint64_t flushed = 0, flushed_bytes = 0;  // wiped by reboot()
  double t = 0.0;

  for (int phase = 0; phase < 40; ++phase) {
    // Phase style: burst / drain / mixed enqueue probability.
    const double style = rng.uniform();
    const double p_enq = style < 0.4 ? 0.95 : style < 0.7 ? 0.15 : 0.6;
    // Quiet gap: jump up to ~6 control intervals so the next packet's lazy
    // control pass has to catch up across missed intervals.
    if (rng.uniform() < 0.4) t += rng.uniform() * 0.3;
    // Faults, mid-stream (FLoc only; baselines carry no router soft state).
    if (fq != nullptr && rng.uniform() < 0.2) {
      if (rng.uniform() < 0.5) {
        flushed += q->packet_count();
        flushed_bytes += q->byte_count();
        fq->reboot(t);
      } else {
        fq->rotate_secret(rng.next_u64(), t);
      }
    }

    const int steps = 300 + static_cast<int>(rng.uniform_int(300));
    for (int i = 0; i < steps; ++i) {
      t += rng.exponential(2e-4);
      // Occasionally force a control pass between packets so control-loop
      // state changes interleave with enqueue/dequeue at arbitrary points.
      if (fq != nullptr && rng.uniform() < 0.02) fq->run_control(t);
      if (rng.uniform() < p_enq) {
        Packet p = random_packet(rng);
        ++offered;
        const int bytes = p.size_bytes;
        if (q->enqueue(std::move(p), t)) {
          ++admitted;
          admitted_bytes += static_cast<std::uint64_t>(bytes);
        }
      } else {
        auto out = q->dequeue(t);
        if (out.has_value()) {
          ++serviced;
          serviced_bytes += static_cast<std::uint64_t>(out->size_bytes);
        }
      }
      ASSERT_LE(q->packet_count(), 64u);
    }

    // Per-phase audit + external conservation (reboot wipes are accounted
    // as flushed, not serviced).
    std::string why;
    ASSERT_TRUE(q->audit(t, &why)) << "phase " << phase << ": " << why;
    ASSERT_EQ(admitted, serviced + q->packet_count() + flushed);
    ASSERT_EQ(admitted_bytes, serviced_bytes + q->byte_count() + flushed_bytes);
    ASSERT_EQ(offered, admitted + q->drops());
  }

  if (fq != nullptr) {
    // Flush a final journal_mode pass, then validate the recorded chain.
    fq->run_control(t);
    const auto transitions =
        tel.journal.of_kind(telemetry::EventKind::kModeTransition);
    double last_time = -1.0;
    std::uint64_t last_seq = 0;
    std::uint64_t last_mode = ~0ULL;
    for (const telemetry::DefenseEvent* e : transitions) {
      EXPECT_LE(e->a, 2u) << "mode ordinal out of range";
      EXPECT_GE(e->time, last_time) << "mode transitions out of time order";
      if (last_mode != ~0ULL) {
        EXPECT_GT(e->seq, last_seq) << "journal seq not monotone";
        EXPECT_NE(e->a, last_mode) << "recorded a transition to the same mode";
      }
      last_time = e->time;
      last_seq = e->seq;
      last_mode = e->a;
    }
    if (!transitions.empty() && !tel.journal.overflowed()) {
      EXPECT_EQ(transitions.back()->a,
                static_cast<std::uint64_t>(static_cast<int>(fq->mode())))
          << "journal tail disagrees with the live mode";
    }
    // Structural bursts + drains must actually have exercised the machinery.
    EXPECT_GT(tel.journal.count(telemetry::EventKind::kDrop) +
                  tel.journal.count(telemetry::EventKind::kModeTransition),
              0u);
  }

  // Drain completely.
  while (auto p = q->dequeue(t)) {
    ++serviced;
  }
  EXPECT_EQ(q->packet_count(), 0u);
  EXPECT_TRUE(q->empty());
}

// Hardened latch cycling: scripted latch -> quiet -> release -> re-latch
// phases (a flood pinned to one origin path, then a calm gap long enough for
// the release hysteresis, repeated) with random background traffic mixed in,
// against the FULL hardening stack — jittered intervals, hash-drawn bucket
// dips with probation audits, exponential-backoff release, and the offender
// blacklist. Every cycle must pass the discipline's own audit plus external
// conservation, and for FLoc the cycling must actually exercise the
// machinery: the pinned path latches, and the backoff bookkeeping stays
// within its configured cap.
TEST_P(QueueFuzz, HardenedLatchReleaseCycles) {
  const FuzzCase fc = GetParam();
  DefenseFactoryConfig cfg;
  cfg.link_bandwidth = mbps(10);
  cfg.buffer_packets = 64;
  cfg.seed = fc.seed;
  cfg.floc.control_interval = 0.05;
  cfg.floc.interval_jitter = 0.15;
  cfg.floc.jitter_dip_prob = 0.4;
  cfg.floc.backoff_release = true;
  cfg.floc.backoff_cap = 8;
  cfg.floc.enable_blacklist = true;
  cfg.floc.blacklist_strikes = 6;
  cfg.floc.blacklist_duration = 1.0;
  auto q = make_defense_queue(fc.scheme, std::move(cfg));
  auto* fq = dynamic_cast<FlocQueue*>(q.get());

  telemetry::Telemetry tel;
  if (fq != nullptr) fq->attach_telemetry(&tel);

  Rng rng(derive_seed(fc.seed, 0, /*salt=*/0xF023));
  std::uint64_t admitted = 0, serviced = 0, offered = 0;
  std::uint64_t admitted_bytes = 0, serviced_bytes = 0;
  double t = 0.0;

  const PathId pinned = PathId::of({3});
  bool ever_latched = false;
  int releases_observed = 0;

  auto offer = [&](Packet p) {
    ++offered;
    const int bytes = p.size_bytes;
    if (q->enqueue(std::move(p), t)) {
      ++admitted;
      admitted_bytes += static_cast<std::uint64_t>(bytes);
    }
  };
  auto service = [&] {
    auto out = q->dequeue(t);
    if (out.has_value()) {
      ++serviced;
      serviced_bytes += static_cast<std::uint64_t>(out->size_bytes);
    }
  };

  for (int cycle = 0; cycle < 8; ++cycle) {
    // Flood phase: hammer the pinned path (fixed flow + src so strikes can
    // accumulate) with random background traffic underneath.
    const int flood_steps = 1500 + static_cast<int>(rng.uniform_int(500));
    for (int i = 0; i < flood_steps; ++i) {
      t += rng.exponential(3e-4);
      Packet p;
      p.flow = 999;
      p.src = 7;
      p.dst = 100;
      p.type = PacketType::kData;
      p.size_bytes = 1000;
      p.path = pinned;
      offer(std::move(p));
      if (rng.uniform() < 0.2) offer(random_packet(rng));
      if (rng.uniform() < 0.35) service();
      ASSERT_LE(q->packet_count(), 64u);
    }
    if (fq != nullptr && fq->is_attack_path(pinned)) ever_latched = true;

    // Quiet phase: drain, then advance across enough control intervals for
    // the (possibly escalated) release hysteresis, keeping the lazy control
    // loop ticking with background traffic.
    while (auto out = q->dequeue(t)) {
      ++serviced;
      serviced_bytes += static_cast<std::uint64_t>(out->size_bytes);
    }
    const bool latched_before_quiet =
        fq != nullptr && fq->is_attack_path(pinned);
    const int quiet_ticks =
        fq == nullptr ? 8 : 2 + fq->release_required(pinned);
    for (int i = 0; i < quiet_ticks; ++i) {
      t += 0.06;
      if (fq != nullptr) fq->run_control(t);
      if (rng.uniform() < 0.5) offer(random_packet(rng));
      if (rng.uniform() < 0.5) service();
    }
    if (latched_before_quiet && fq != nullptr && !fq->is_attack_path(pinned)) {
      ++releases_observed;
    }

    std::string why;
    ASSERT_TRUE(q->audit(t, &why)) << "cycle " << cycle << ": " << why;
    ASSERT_EQ(admitted, serviced + q->packet_count());
    ASSERT_EQ(admitted_bytes, serviced_bytes + q->byte_count());
    ASSERT_EQ(offered, admitted + q->drops());
    if (fq != nullptr) {
      EXPECT_LE(fq->backoff_multiplier(pinned), 8) << "cap exceeded";
      EXPECT_GE(fq->backoff_multiplier(pinned), 1);
    }
  }

  if (fq != nullptr) {
    // The scripted cycling must actually have walked the latch machinery.
    EXPECT_TRUE(ever_latched);
    EXPECT_GT(releases_observed, 0);
    EXPECT_GT(tel.journal.count(telemetry::EventKind::kAttackLatch), 0u);
    EXPECT_GT(tel.journal.count(telemetry::EventKind::kAttackRelease), 0u);
  }

  while (auto p = q->dequeue(t)) {
    ++serviced;
  }
  EXPECT_TRUE(q->empty());
}

// State-exhaustion churn: >= 10^5 DISTINCT path keys (every packet claims a
// fresh origin AS) with rotating flow ids and sender addresses, against every
// discipline. For FLoc the state budgets and overload mode are ON with tiny
// capacities, so the phase crosses the eviction and overload machinery tens
// of thousands of times; the other disciplines prove churn cannot crash or
// un-conserve a stateless queue either. Table-size bounds are asserted DURING
// the churn (any instant over budget is a failure, not just the end state),
// and the audit must stay clean after heavy eviction.
//
// The origin capacity (64) sits well below the expected arrival count of the
// first control interval (~250), so the table provably fills and evicts
// BEFORE the first overload evaluation can coarsen new paths away — with a
// larger capacity, a seed whose first window delivers fewer packets than
// capacity would enter overload first and never evict an origin at all.
TEST_P(QueueFuzz, StateChurnBoundedTables) {
  const FuzzCase fc = GetParam();
  DefenseFactoryConfig cfg;
  cfg.link_bandwidth = mbps(10);
  cfg.buffer_packets = 64;
  cfg.seed = fc.seed;
  cfg.floc.control_interval = 0.05;
  cfg.floc.origin_budget.capacity = 64;
  cfg.floc.flow_budget.capacity = 32;
  cfg.floc.offense_budget.capacity = 64;
  cfg.floc.offender_budget.capacity = 64;
  cfg.floc.enable_overload_mode = true;
  cfg.floc.backoff_release = true;
  cfg.floc.enable_blacklist = true;
  // Exercise each eviction policy across the seed grid.
  cfg.floc.origin_budget.policy =
      static_cast<EvictionPolicy>(fc.seed % kEvictionPolicyCount);
  auto q = make_defense_queue(fc.scheme, std::move(cfg));
  auto* fq = dynamic_cast<FlocQueue*>(q.get());

  Rng rng(derive_seed(fc.seed, 0, /*salt=*/0xF024));
  std::uint64_t admitted = 0, serviced = 0, offered = 0;
  std::uint64_t admitted_bytes = 0, serviced_bytes = 0;
  double t = 0.0;

  constexpr int kDistinctPaths = 100'000;
  for (int i = 0; i < kDistinctPaths; ++i) {
    t += rng.exponential(2e-4);
    Packet p;
    // Fresh identity per packet: distinct origin AS (=> distinct path key),
    // rotating flow id and source address.
    p.flow = static_cast<FlowId>(i % 4096);
    p.src = static_cast<HostAddr>(1 + (i % 997));
    p.dst = 100;
    p.type = i % 8 == 0 ? PacketType::kSyn : PacketType::kData;
    p.size_bytes = p.type == PacketType::kData ? 200 : 40;
    p.seq = static_cast<std::uint64_t>(i);
    PathId path;
    path.push_origin(static_cast<AsNumber>(7));  // shared first hop
    path.push_origin(static_cast<AsNumber>(1000 + i));  // unique origin
    p.path = path;
    ++offered;
    const int bytes = p.size_bytes;
    if (q->enqueue(std::move(p), t)) {
      ++admitted;
      admitted_bytes += static_cast<std::uint64_t>(bytes);
    }
    if (i % 3 == 0) {
      auto out = q->dequeue(t);
      if (out.has_value()) {
        ++serviced;
        serviced_bytes += static_cast<std::uint64_t>(out->size_bytes);
      }
    }
    ASSERT_LE(q->packet_count(), 64u);
    if (fq != nullptr) {
      // Bounded at EVERY instant, not just at the end.
      ASSERT_LE(fq->active_origin_path_count(), 64);
      ASSERT_LE(fq->max_path_flow_count(), 32u);
      ASSERT_LE(fq->offense_size(), 64u);
      ASSERT_LE(fq->offender_size(), 64u);
    }
    if (i % 20000 == 19999) {
      std::string why;
      ASSERT_TRUE(q->audit(t, &why)) << "at i=" << i << ": " << why;
    }
  }

  std::string why;
  ASSERT_TRUE(q->audit(t, &why)) << why;
  ASSERT_EQ(admitted, serviced + q->packet_count());
  ASSERT_EQ(admitted_bytes, serviced_bytes + q->byte_count());
  ASSERT_EQ(offered, admitted + q->drops());
  if (fq != nullptr) {
    // 10^5 distinct paths through a 64-entry table: eviction must have run.
    EXPECT_GT(fq->evicted_origins(), 0u);
  }

  while (auto p = q->dequeue(t)) {
    ++serviced;
  }
  EXPECT_TRUE(q->empty());
  EXPECT_EQ(q->byte_count(), 0u);
}

// Engine-lockstep phase (ISSUE 10, satellite 5): the same phase-structured
// mode-transition workload, but driven THROUGH a Simulator by a
// self-rescheduling driver event — once on the heap engine, once on the
// wheel — with scheduler ops (timer schedules, cancels, quiet-gap jumps,
// mid-stream FLoc faults, forced control passes) mixed into the packet
// stream. The per-engine Rng streams are seeded identically, so every
// observable (conservation counters, final clock, events processed and
// cancelled, and for FLoc the byte-exact defense-event journal) must match
// across engines; any divergence in event ordering desynchronizes the Rng
// draw sequence and shows up in the comparison.
struct EngineRun {
  std::uint64_t offered = 0, admitted = 0, serviced = 0;
  std::uint64_t admitted_bytes = 0, serviced_bytes = 0;
  std::uint64_t flushed = 0, flushed_bytes = 0;  // wiped by reboot()
  std::uint64_t processed = 0, cancelled = 0, late = 0;
  double end_time = 0.0;
  std::string journal;
};

EngineRun run_mode_transition_world(const FuzzCase& fc, SimEngine engine) {
  DefenseFactoryConfig cfg;
  cfg.link_bandwidth = mbps(10);
  cfg.buffer_packets = 64;
  cfg.seed = fc.seed;
  cfg.floc.control_interval = 0.05;
  auto q = make_defense_queue(fc.scheme, std::move(cfg));
  auto* fq = dynamic_cast<FlocQueue*>(q.get());

  telemetry::Telemetry tel;
  if (fq != nullptr) fq->attach_telemetry(&tel);

  Simulator sim(engine);
  Rng rng(derive_seed(fc.seed, 0, /*salt=*/0xF025));
  EngineRun r;
  int steps = 0;
  constexpr int kSteps = 12000;

  std::function<void()> step = [&] {
    if (steps >= kSteps) return;
    ++steps;
    const double t = sim.now();
    if (fq != nullptr && rng.uniform() < 0.005) {
      if (rng.uniform() < 0.5) {
        r.flushed += q->packet_count();
        r.flushed_bytes += q->byte_count();
        fq->reboot(t);
      } else {
        fq->rotate_secret(rng.next_u64(), t);
      }
    }
    if (fq != nullptr && rng.uniform() < 0.02) fq->run_control(t);
    if (rng.uniform() < 0.65) {
      Packet p = random_packet(rng);
      ++r.offered;
      const int bytes = p.size_bytes;
      if (q->enqueue(std::move(p), t)) {
        ++r.admitted;
        r.admitted_bytes += static_cast<std::uint64_t>(bytes);
      }
    } else {
      auto out = q->dequeue(t);
      if (out.has_value()) {
        ++r.serviced;
        r.serviced_bytes += static_cast<std::uint64_t>(out->size_bytes);
      }
    }
    // Mix raw scheduler traffic into the packet stream: decoy timers at
    // random horizons, half of them cancelled again immediately.
    if (rng.uniform() < 0.05) {
      auto h = sim.schedule_in(rng.uniform() * 0.01, [] {});
      if (rng.uniform() < 0.5) sim.cancel(h);
    }
    // Mostly packet-paced gaps; occasionally a quiet jump across several
    // control intervals (mode-release territory).
    const double dt =
        rng.uniform() < 0.01 ? rng.uniform() * 0.3 : rng.exponential(2e-4);
    sim.schedule_in(dt, step);
  };
  sim.schedule_at(0.0, step);
  sim.run();

  EXPECT_EQ(steps, kSteps);
  std::string why;
  EXPECT_TRUE(q->audit(sim.now(), &why)) << why;
  while (auto out = q->dequeue(sim.now())) {
    ++r.serviced;
    r.serviced_bytes += static_cast<std::uint64_t>(out->size_bytes);
  }
  EXPECT_TRUE(q->empty());
  EXPECT_EQ(r.offered, r.admitted + q->drops());
  EXPECT_EQ(r.admitted_bytes, r.serviced_bytes + r.flushed_bytes);
  r.processed = sim.events_processed();
  r.cancelled = sim.cancelled_events();
  r.late = sim.late_events();
  r.end_time = sim.now();
  r.journal = tel.journal.dump();
  return r;
}

TEST_P(QueueFuzz, EngineLockstepModeTransitions) {
  const EngineRun heap = run_mode_transition_world(GetParam(), SimEngine::kHeap);
  const EngineRun wheel =
      run_mode_transition_world(GetParam(), SimEngine::kWheel);
  EXPECT_EQ(heap.offered, wheel.offered);
  EXPECT_EQ(heap.admitted, wheel.admitted);
  EXPECT_EQ(heap.serviced, wheel.serviced);
  EXPECT_EQ(heap.admitted_bytes, wheel.admitted_bytes);
  EXPECT_EQ(heap.serviced_bytes, wheel.serviced_bytes);
  EXPECT_EQ(heap.flushed, wheel.flushed);
  EXPECT_EQ(heap.flushed_bytes, wheel.flushed_bytes);
  EXPECT_EQ(heap.processed, wheel.processed);
  EXPECT_EQ(heap.cancelled, wheel.cancelled);
  EXPECT_EQ(heap.late, wheel.late);
  EXPECT_EQ(heap.end_time, wheel.end_time);
  EXPECT_EQ(heap.journal, wheel.journal)
      << "defense-event journal diverged across engines";
  EXPECT_GT(heap.processed, 12000u);
}

std::vector<FuzzCase> all_cases() {
  std::vector<FuzzCase> out;
  for (DefenseScheme s :
       {DefenseScheme::kDropTail, DefenseScheme::kRed, DefenseScheme::kRedPd,
        DefenseScheme::kPushback, DefenseScheme::kPriorityFair,
        DefenseScheme::kDrr, DefenseScheme::kFloc}) {
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) out.push_back({s, seed});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, QueueFuzz, ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<FuzzCase>& info) {
                           return std::string(to_string(info.param.scheme) ==
                                                      std::string("red-pd")
                                                  ? "red_pd"
                                                  : to_string(info.param.scheme)) +
                                  "_" + std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace floc
