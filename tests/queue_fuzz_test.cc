// Randomized robustness sweep over every queue discipline: arbitrary packet
// streams (mixed types, sizes, paths, timestamps) must never violate the
// queue invariants — no crash, byte/packet conservation, buffer bounds.
#include <gtest/gtest.h>

#include "topology/defense_factory.h"
#include "util/rng.h"

namespace floc {
namespace {

struct FuzzCase {
  DefenseScheme scheme;
  std::uint64_t seed;
};

class QueueFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(QueueFuzz, InvariantsUnderRandomTraffic) {
  const FuzzCase fc = GetParam();
  DefenseFactoryConfig cfg;
  cfg.link_bandwidth = mbps(10);
  cfg.buffer_packets = 64;
  cfg.seed = fc.seed;
  auto q = make_defense_queue(fc.scheme, std::move(cfg));

  Rng rng(fc.seed * 7919 + 13);
  std::uint64_t admitted = 0, serviced = 0, offered = 0;
  std::uint64_t admitted_bytes = 0, serviced_bytes = 0;
  double t = 0.0;

  for (int i = 0; i < 30000; ++i) {
    t += rng.exponential(2e-4);
    const double action = rng.uniform();
    if (action < 0.7) {
      Packet p;
      p.flow = rng.uniform_int(40);
      p.src = static_cast<HostAddr>(rng.uniform_int(20) + 1);
      p.dst = static_cast<HostAddr>(rng.uniform_int(5) + 100);
      const auto type_pick = rng.uniform_int(10);
      p.type = type_pick < 7   ? PacketType::kData
               : type_pick < 8 ? PacketType::kSyn
               : type_pick < 9 ? PacketType::kAck
                               : PacketType::kSynAck;
      p.size_bytes = p.type == PacketType::kData
                         ? static_cast<int>(rng.uniform_int(1461) + 40)
                         : 40;
      p.seq = rng.uniform_int(1000);
      PathId path;
      const auto hops = rng.uniform_int(3) + 1;
      for (std::uint64_t h = 0; h < hops; ++h) {
        path.push_origin(static_cast<AsNumber>(rng.uniform_int(6) + 1));
      }
      p.path = path;
      ++offered;
      const int bytes = p.size_bytes;
      if (q->enqueue(std::move(p), t)) {
        ++admitted;
        admitted_bytes += static_cast<std::uint64_t>(bytes);
      }
    } else {
      auto out = q->dequeue(t);
      if (out.has_value()) {
        ++serviced;
        serviced_bytes += static_cast<std::uint64_t>(out->size_bytes);
      }
    }
    ASSERT_LE(q->packet_count(), 64u);
  }

  // Conservation.
  EXPECT_EQ(admitted, serviced + q->packet_count());
  EXPECT_EQ(admitted_bytes, serviced_bytes + q->byte_count());
  EXPECT_EQ(offered, admitted + q->drops());
  // Drain completely.
  while (auto p = q->dequeue(t)) {
    ++serviced;
  }
  EXPECT_EQ(q->packet_count(), 0u);
  EXPECT_EQ(q->byte_count(), 0u);
  EXPECT_TRUE(q->empty());
}

std::vector<FuzzCase> all_cases() {
  std::vector<FuzzCase> out;
  for (DefenseScheme s :
       {DefenseScheme::kDropTail, DefenseScheme::kRed, DefenseScheme::kRedPd,
        DefenseScheme::kPushback, DefenseScheme::kPriorityFair,
        DefenseScheme::kDrr, DefenseScheme::kFloc}) {
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) out.push_back({s, seed});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, QueueFuzz, ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<FuzzCase>& info) {
                           return std::string(to_string(info.param.scheme) ==
                                                      std::string("red-pd")
                                                  ? "red_pd"
                                                  : to_string(info.param.scheme)) +
                                  "_" + std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace floc
