#include "core/token_bucket.h"

#include <gtest/gtest.h>

namespace floc {
namespace {

constexpr int kPkt = 1500;

model::TokenBucketParams simple_params(double period, double bucket_pkts,
                                       double incr_factor = 1.5) {
  model::TokenBucketParams p;
  p.period = period;
  p.bucket_packets = bucket_pkts;
  p.bucket_packets_incr = bucket_pkts * incr_factor;
  return p;
}

TEST(TokenBucket, StartsFull) {
  PathTokenBucket b;
  b.configure(simple_params(0.1, 10.0), kPkt);
  EXPECT_TRUE(b.try_consume(10 * kPkt, 0.05, true));
}

TEST(TokenBucket, ExhaustsWithinPeriod) {
  PathTokenBucket b;
  b.configure(simple_params(0.1, 10.0, 1.0), kPkt);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(b.try_consume(kPkt, 0.01, true)) << i;
  }
  EXPECT_FALSE(b.try_consume(kPkt, 0.02, true));
}

TEST(TokenBucket, RefillsAtPeriodBoundary) {
  PathTokenBucket b;
  b.configure(simple_params(0.1, 5.0, 1.0), kPkt);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(b.try_consume(kPkt, 0.01, true));
  EXPECT_FALSE(b.try_consume(kPkt, 0.05, true));
  // Next period: fresh tokens.
  EXPECT_TRUE(b.try_consume(kPkt, 0.11, true));
}

TEST(TokenBucket, UnusedTokensDiscardedNotAccumulated) {
  PathTokenBucket b;
  b.configure(simple_params(0.1, 5.0, 1.0), kPkt);
  // Consume nothing for 10 periods, then the bucket holds only one period's
  // worth (Section IV-A: unused tokens of the previous period are removed).
  EXPECT_DOUBLE_EQ(b.tokens(1.05, true), 5.0 * kPkt);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(b.try_consume(kPkt, 1.06, true));
  EXPECT_FALSE(b.try_consume(kPkt, 1.07, true));
}

TEST(TokenBucket, IncreasedVsBaseBucket) {
  PathTokenBucket b;
  b.configure(simple_params(0.1, 10.0, 1.5), kPkt);
  // Flooding mode uses the base bucket: only 10 packets per period.
  EXPECT_DOUBLE_EQ(b.tokens(0.15, false), 10.0 * kPkt);
  // Congested mode gets the increased bucket on the next refill.
  EXPECT_DOUBLE_EQ(b.tokens(0.25, true), 15.0 * kPkt);
}

TEST(TokenBucket, BurstWithinPeriodAllowed) {
  PathTokenBucket b;
  b.configure(simple_params(1.0, 100.0, 1.0), kPkt);
  // All 100 tokens can go at one instant (bursty requests within a period
  // are allowed, Section IV-A).
  EXPECT_TRUE(b.try_consume(100 * kPkt, 0.5, true));
  EXPECT_FALSE(b.try_consume(kPkt, 0.6, true));
}

TEST(TokenBucket, ReconfigureTakesEffectNextRefill) {
  PathTokenBucket b;
  b.configure(simple_params(0.1, 5.0, 1.0), kPkt);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(b.try_consume(kPkt, 0.01, true));
  b.configure(simple_params(0.1, 20.0, 1.0), kPkt);
  EXPECT_FALSE(b.try_consume(kPkt, 0.05, true));  // current period unchanged
  EXPECT_DOUBLE_EQ(b.tokens(0.15, true), 20.0 * kPkt);
}

TEST(TokenBucket, ThroughputOverManyPeriods) {
  PathTokenBucket b;
  const double period = 0.01;
  b.configure(simple_params(period, 10.0, 1.0), kPkt);
  // Offered load of 2x the bucket rate for 1 s: admitted amount must equal
  // bucket capacity per period, i.e. 1000 packets.
  int admitted = 0;
  for (int i = 0; i < 2000; ++i) {
    const double t = i * 0.0005;
    if (b.try_consume(kPkt, t, true)) ++admitted;
  }
  EXPECT_NEAR(admitted, 1000, 15);
}

TEST(TokenBucket, UnconfiguredRejectsGracefully) {
  PathTokenBucket b;
  EXPECT_FALSE(b.configured());
}

}  // namespace
}  // namespace floc
