#include "baselines/red_pd.h"

#include <gtest/gtest.h>

namespace floc {
namespace {

RedPdConfig small_cfg() {
  RedPdConfig cfg;
  cfg.red.buffer_packets = 60;
  cfg.red.min_th = 5.0;
  cfg.red.max_th = 25.0;
  cfg.red.weight = 0.2;
  cfg.red.max_p = 0.2;
  cfg.target_rtt = 0.02;
  cfg.epoch_factor = 2.0;  // 40 ms epochs
  return cfg;
}

Packet pkt(FlowId f) {
  Packet p;
  p.flow = f;
  return p;
}

TEST(RedPdQueue, BehavesLikeRedWhenCalm) {
  RedPdQueue q(small_cfg());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.enqueue(pkt(1), 0.001 * i));
  EXPECT_EQ(q.drops(), 0u);
  EXPECT_EQ(q.monitored_count(), 0u);
}

// A persistent high-rate flow should get monitored and preferentially
// dropped; a light flow should stay unmonitored.
TEST(RedPdQueue, MonitorsPersistentOffender) {
  RedPdQueue q(small_cfg());
  double t = 0.0;
  for (int i = 0; i < 30000; ++i) {
    t = i * 0.0002;                 // 5000 pkt/s heavy flow
    q.enqueue(pkt(100), t);
    if (i % 50 == 0) q.enqueue(pkt(1), t);  // 100 pkt/s light flow
    if (i % 5 != 0) q.dequeue(t);           // ~4000 pkt/s service
  }
  EXPECT_TRUE(q.is_monitored(100));
  // The heavy flow's pre-drop probability must dominate any transient
  // monitoring of the light flow.
  EXPECT_GT(q.monitored_prob(100), 2.0 * q.monitored_prob(1));
  EXPECT_GT(q.monitored_prob(100), 0.05);
  EXPECT_GT(q.drops(), 0u);
}

TEST(RedPdQueue, MonitoredProbabilityDecaysWhenFlowStops) {
  RedPdQueue q(small_cfg());
  double t = 0.0;
  for (int i = 0; i < 30000; ++i) {
    t = i * 0.0002;
    q.enqueue(pkt(100), t);
    if (i % 3 == 0) q.dequeue(t);
  }
  ASSERT_TRUE(q.is_monitored(100));
  // Flow goes silent; epochs pass via other light traffic.
  for (int i = 0; i < 20000; ++i) {
    t += 0.0005;
    q.enqueue(pkt(1), t);
    q.dequeue(t);
  }
  EXPECT_FALSE(q.is_monitored(100));
}

TEST(RedPdQueue, ControlPacketsNotMonitored) {
  RedPdQueue q(small_cfg());
  Packet p = pkt(5);
  p.type = PacketType::kSyn;
  for (int i = 0; i < 100; ++i) {
    Packet c = p;
    q.enqueue(std::move(c), 0.001 * i);
  }
  EXPECT_EQ(q.monitored_count(), 0u);
}

}  // namespace
}  // namespace floc
