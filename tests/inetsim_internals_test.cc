// Tick-simulator internals: suspect classification, group weights after
// aggregation, and policy invariants.
#include <gtest/gtest.h>

#include "inetsim/tick_sim.h"

#include "util/stats.h"
#include "topology/skitter_gen.h"

namespace floc {
namespace {

struct SmallWorld {
  AsGraph graph;
  SourcePlacement placement;

  SmallWorld() {
    SkitterConfig s;
    s.as_count = 150;
    s.seed = 77;
    graph = generate_skitter_tree(s);
    PlacementConfig p;
    p.legit_sources = 150;
    p.legit_ases = 20;
    p.attack_sources = 1500;
    p.attack_ases = 10;
    p.seed = 78;
    placement = place_sources(graph, p);
  }
};

TickConfig cfg(TickPolicy policy) {
  TickConfig t;
  t.policy = policy;
  t.bottleneck_capacity = 300;
  t.internal_capacity = 1200;
  t.ticks = 800;
  t.warmup_ticks = 200;
  t.seed = 79;
  return t;
}

TEST(TickInternals, AttackAsConformanceFalls) {
  SmallWorld w;
  TickSim sim(w.graph, w.placement, cfg(TickPolicy::kFloc));
  sim.run();
  RunningStats legit_e, attack_e;
  for (int as = 0; as < w.graph.size(); ++as) {
    const bool has_bots = w.placement.bots_per_as[static_cast<std::size_t>(as)] > 0;
    const bool has_legit =
        w.placement.legit_per_as[static_cast<std::size_t>(as)] > 0;
    if (!has_bots && !has_legit) continue;
    const auto v = sim.as_view(as);
    (has_bots ? attack_e : legit_e).add(v.conformance);
  }
  EXPECT_GT(legit_e.mean(), 0.85);
  EXPECT_LT(attack_e.mean(), 0.5);
}

TEST(TickInternals, GroupWeightsProportionalAfterAggregation) {
  SmallWorld w;
  TickConfig t = cfg(TickPolicy::kFloc);
  t.guaranteed_paths = 18;
  TickSim sim(w.graph, w.placement, t);
  const TickResults r = sim.run();
  EXPECT_GT(r.aggregate_count, 0);
  // Every placed AS belongs to some group with a positive weight.
  for (int as = 0; as < w.graph.size(); ++as) {
    if (w.placement.legit_per_as[static_cast<std::size_t>(as)] == 0 &&
        w.placement.bots_per_as[static_cast<std::size_t>(as)] == 0)
      continue;
    const auto v = sim.as_view(as);
    EXPECT_GE(v.group, 0);
    EXPECT_GT(v.group_weight, 0.0);
  }
}

TEST(TickInternals, UtilizationNeverExceedsCapacity) {
  SmallWorld w;
  for (TickPolicy p : {TickPolicy::kNoDefense, TickPolicy::kFairPriority,
                       TickPolicy::kFloc}) {
    const TickResults r = TickSim(w.graph, w.placement, cfg(p)).run();
    EXPECT_LE(r.utilization, 1.0 + 1e-9) << to_string(p);
    EXPECT_GE(r.utilization, 0.5) << to_string(p);  // flood keeps it busy
  }
}

TEST(TickInternals, DisablingFilterRaisesAttackShare) {
  SmallWorld w;
  TickConfig normal = cfg(TickPolicy::kFloc);
  TickConfig no_filter = cfg(TickPolicy::kFloc);
  no_filter.attack_over_rate = 1e9;  // per-flow filter never triggers
  const TickResults rn = TickSim(w.graph, w.placement, normal).run();
  const TickResults rq = TickSim(w.graph, w.placement, no_filter).run();
  EXPECT_GE(rq.attack_frac, rn.attack_frac);
}

TEST(TickInternals, BotRateScalesAttackPressure) {
  SmallWorld w;
  TickConfig weak = cfg(TickPolicy::kNoDefense);
  weak.bot_rate = 0.05;
  TickConfig strong = cfg(TickPolicy::kNoDefense);
  strong.bot_rate = 1.0;
  const TickResults rw = TickSim(w.graph, w.placement, weak).run();
  const TickResults rs = TickSim(w.graph, w.placement, strong).run();
  EXPECT_GT(rw.legit_legit_frac, rs.legit_legit_frac);
}

}  // namespace
}  // namespace floc
