// NewReno recovery behaviour: multiple losses in one window are repaired by
// partial-ACK retransmissions without waiting for timeouts.
#include <gtest/gtest.h>

#include <set>

#include "netsim/drop_tail.h"
#include "netsim/network.h"
#include "transport/flow_monitor.h"
#include "transport/tcp_sink.h"
#include "transport/tcp_source.h"

namespace floc {
namespace {

// A queue that deterministically drops a chosen set of sequence numbers the
// first time they pass (loss injection).
class LossInjectQueue : public QueueDisc {
 public:
  LossInjectQueue(std::size_t capacity, std::set<std::uint64_t> losses)
      : capacity_(capacity), to_drop_(std::move(losses)) {}

  bool enqueue(Packet&& p, TimeSec now) override {
    if (p.type == PacketType::kData) {
      auto it = to_drop_.find(p.seq);
      if (it != to_drop_.end()) {
        to_drop_.erase(it);
        note_drop(p, DropReason::kRandomEarly, now);
        return false;
      }
    }
    if (q_.size() >= capacity_) {
      note_drop(p, DropReason::kQueueFull, now);
      return false;
    }
    bytes_ += static_cast<std::size_t>(p.size_bytes);
    q_.push_back(std::move(p));
    note_admit();
    return true;
  }
  std::optional<Packet> dequeue(TimeSec) override {
    if (q_.empty()) return std::nullopt;
    Packet p = std::move(q_.front());
    q_.pop_front();
    bytes_ -= static_cast<std::size_t>(p.size_bytes);
    return p;
  }
  bool empty() const override { return q_.empty(); }
  std::size_t packet_count() const override { return q_.size(); }
  std::size_t byte_count() const override { return bytes_; }

 private:
  std::size_t capacity_;
  std::set<std::uint64_t> to_drop_;
  std::deque<Packet> q_;
  std::size_t bytes_ = 0;
};

struct World {
  Simulator sim;
  Network net{&sim};
  Host* client;
  Host* server;
  FlowMonitor monitor;
  std::unique_ptr<TcpSink> sink;

  explicit World(std::set<std::uint64_t> losses) {
    client = net.add_host("c", 1);
    Router* r = net.add_router("r", 2);
    server = net.add_host("s", 3);
    net.connect(client, r, mbps(50), 0.002);
    net.connect(r, server, mbps(10), 0.005,
                std::make_unique<LossInjectQueue>(200, std::move(losses)));
    net.build_routes();
    sink = std::make_unique<TcpSink>(&sim, server, &monitor);
  }
};

TEST(NewReno, MultipleLossesRepairedWithoutTimeout) {
  // Drop three segments of the same window; NewReno repairs via one fast
  // retransmit plus partial-ACK retransmissions — no RTO needed.
  World w({20, 21, 22});
  TcpSourceConfig cfg;
  cfg.flow = 1;
  cfg.dst = w.server->addr();
  cfg.total_packets = 200;
  TcpSource src(&w.sim, w.client, cfg);
  src.start_at(0.0);
  w.sim.run_until(30.0);
  EXPECT_TRUE(src.done());
  EXPECT_EQ(w.sink->delivered_packets(), 200u);
  EXPECT_GE(src.retransmits(), 3u);
  EXPECT_EQ(src.timeouts(), 0u);
}

TEST(NewReno, SingleLossStillFastRetransmits) {
  World w({30});
  TcpSourceConfig cfg;
  cfg.flow = 1;
  cfg.dst = w.server->addr();
  cfg.total_packets = 120;
  TcpSource src(&w.sim, w.client, cfg);
  src.start_at(0.0);
  w.sim.run_until(30.0);
  EXPECT_TRUE(src.done());
  EXPECT_EQ(src.timeouts(), 0u);
  EXPECT_GE(src.retransmits(), 1u);
}

TEST(NewReno, BurstLossAcrossWindowBoundaryCompletes) {
  World w({15, 16, 17, 18, 19, 40, 41});
  TcpSourceConfig cfg;
  cfg.flow = 1;
  cfg.dst = w.server->addr();
  cfg.total_packets = 300;
  TcpSource src(&w.sim, w.client, cfg);
  src.start_at(0.0);
  w.sim.run_until(60.0);
  EXPECT_TRUE(src.done());
  EXPECT_EQ(w.sink->delivered_packets(), 300u);
}

}  // namespace
}  // namespace floc
