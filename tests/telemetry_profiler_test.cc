// Profiler unit tests: section get-or-create, ScopedTimer accounting, the
// registry-backed per-call histograms, report() content, and reset().
#include <string>

#include <gtest/gtest.h>

#include "telemetry/metrics.h"
#include "telemetry/profiler.h"

namespace floc::telemetry {
namespace {

TEST(Profiler, SectionIsGetOrCreateWithStablePointers) {
  Profiler prof;
  Profiler::Section* enq = prof.section("enqueue");
  Profiler::Section* deq = prof.section("dequeue");
  ASSERT_NE(enq, nullptr);
  ASSERT_NE(deq, nullptr);
  EXPECT_NE(enq, deq);
  EXPECT_EQ(prof.section("enqueue"), enq);
  EXPECT_EQ(prof.sections().size(), 2u);
  EXPECT_EQ(enq->name, "enqueue");
  EXPECT_EQ(enq->calls, 0u);
  EXPECT_EQ(enq->hist, nullptr);  // no registry attached
}

TEST(Profiler, RecordAndScopedTimerAccumulate) {
  Profiler prof;
  Profiler::Section* s = prof.section("work");
  s->record(100);
  s->record(50);
  EXPECT_EQ(s->calls, 2u);
  EXPECT_EQ(s->total_ns, 150u);
  EXPECT_EQ(prof.total_ns(), 150u);

  { ScopedTimer t(s); }
  EXPECT_EQ(s->calls, 3u);  // real clock delta added, >= 0

  // Null section: the no-op fast path.
  { ScopedTimer t(nullptr); }
  EXPECT_EQ(prof.section("work")->calls, 3u);
}

TEST(Profiler, RegistryBackedSectionsRegisterHistograms) {
  MetricRegistry reg;
  Profiler prof(&reg, "prof.test");
  Profiler::Section* s = prof.section("verify");
  ASSERT_NE(s->hist, nullptr);
  s->record(1000);
  s->record(2000);

  const MetricRegistry::Metric* m = reg.find("prof.test.verify.ns");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kHistogram);
  ASSERT_NE(m->histogram, nullptr);
  EXPECT_EQ(m->histogram.get(), s->hist);
  EXPECT_EQ(s->hist->count(), 2u);
  EXPECT_NEAR(s->hist->mean(), 1500.0, 1500.0 * 0.02);
}

TEST(Profiler, ReportListsSectionsSortedByTotal) {
  Profiler prof;
  prof.section("small")->record(10);
  prof.section("big")->record(1000000);
  const std::string rep = prof.report();
  EXPECT_NE(rep.find("big"), std::string::npos);
  EXPECT_NE(rep.find("small"), std::string::npos);
  EXPECT_NE(rep.find("calls"), std::string::npos);
  EXPECT_LT(rep.find("big"), rep.find("small"));  // sorted desc by total
}

TEST(Profiler, ReportShowsPercentilesWithRegistry) {
  MetricRegistry reg;
  Profiler prof(&reg, "prof.test");
  Profiler::Section* s = prof.section("verify");
  for (int i = 0; i < 100; ++i) s->record(1000);
  const std::string rep = prof.report();
  EXPECT_NE(rep.find("p50"), std::string::npos) << rep;
  EXPECT_NE(rep.find("p95"), std::string::npos) << rep;
  EXPECT_NE(rep.find("p99"), std::string::npos) << rep;
  // With a registry-backed histogram the row carries real quantiles, not
  // the "-" placeholder.
  const size_t row = rep.find("verify");
  ASSERT_NE(row, std::string::npos);
  EXPECT_EQ(rep.find(" -", row), std::string::npos) << rep;
}

TEST(Profiler, ReportWithoutRegistryShowsPlaceholders) {
  Profiler prof;  // no registry: sections have no histogram
  prof.section("bare")->record(500);
  const std::string rep = prof.report();
  const size_t row = rep.find("bare");
  ASSERT_NE(row, std::string::npos);
  // mean column still renders, percentile columns degrade to "-".
  EXPECT_NE(rep.find(" -", row), std::string::npos) << rep;
}

TEST(Profiler, ResetZeroesCountersButKeepsSections) {
  Profiler prof;
  Profiler::Section* s = prof.section("x");
  s->record(42);
  prof.reset();
  EXPECT_EQ(prof.section("x"), s);
  EXPECT_EQ(s->calls, 0u);
  EXPECT_EQ(s->total_ns, 0u);
  EXPECT_EQ(prof.total_ns(), 0u);
}

TEST(Profiler, EmptyReportDoesNotDivideByZero) {
  Profiler prof;
  prof.section("never-hit");
  const std::string rep = prof.report();
  EXPECT_NE(rep.find("never-hit"), std::string::npos);
}

}  // namespace
}  // namespace floc::telemetry
