// Hardening-layer tests: measurement jitter must not tax conformant flows,
// exponential-backoff release must confine duty-cycled floods geometrically,
// the offender blacklist must add/drop/expire with rate-limited strikes, and
// offense + blacklist verdicts must survive a FaultPlan-driven reboot.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/floc_queue.h"
#include "faultsim/fault_plan.h"
#include "netsim/simulator.h"

namespace floc {
namespace {

FlocConfig base_cfg() {
  FlocConfig cfg;
  cfg.link_bandwidth = mbps(10);
  cfg.buffer_packets = 60;
  cfg.control_interval = 0.05;
  cfg.default_rtt = 0.05;
  cfg.enable_aggregation = false;
  return cfg;
}

Packet data(FlowId flow, const PathId& path, HostAddr src) {
  Packet p;
  p.flow = flow;
  p.src = src;
  p.dst = 99;
  p.path = path;
  p.type = PacketType::kData;
  return p;
}

// Floods `bad` at 3x the link while `good` sends conformantly; services at
// link rate. Returns the number of admitted `good` packets.
int drive_flood(FlocQueue& q, double t0, double t1, const PathId& bad,
                const PathId& good, bool flood_on = true) {
  const double dt = 1.0 / 2500.0;
  double next_service = t0;
  int good_admitted = 0;
  const int steps = static_cast<int>((t1 - t0) / dt);
  for (int i = 0; i < steps; ++i) {
    const double t = t0 + i * dt;
    if (flood_on) q.enqueue(data(100, bad, /*src=*/2), t);
    if (i % 8 == 0 && q.enqueue(data(1, good, /*src=*/1), t)) ++good_admitted;
    while (next_service <= t) {
      q.dequeue(next_service);
      next_service += 1.0 / 833.0;
    }
  }
  return good_admitted;
}

// --- Measurement jitter ----------------------------------------------------

// Property: the jitter re-draws each aggregate's token period and scales the
// bucket with it, so the long-run token rate — and with it a conformant
// flow's admitted throughput — stays within a few percent of the unjittered
// run, across seeds, even in flooding mode where tokens are enforced
// strictly for every path.
TEST(HardeningJitter, ConformantThroughputWithinEpsilonAcrossSeeds) {
  for (std::uint64_t seed : {7ull, 21ull, 1234ull}) {
    int admitted[2];
    for (int j = 0; j < 2; ++j) {
      FlocConfig cfg = base_cfg();
      cfg.rng_seed = seed;
      cfg.interval_jitter = j == 0 ? 0.0 : 0.15;
      FlocQueue q(cfg);
      const PathId good = PathId::of({1, 10});
      const PathId bad = PathId::of({2, 20});
      drive_flood(q, 0.0, 2.0, bad, good);  // warm up, latch the flood
      admitted[j] = drive_flood(q, 2.0, 10.0, bad, good);
    }
    EXPECT_GT(admitted[0], 0);
    EXPECT_NEAR(static_cast<double>(admitted[1]),
                static_cast<double>(admitted[0]),
                0.05 * static_cast<double>(admitted[0]))
        << "seed " << seed;
  }
}

// --- Exponential-backoff release -------------------------------------------

TEST(HardeningBackoff, EscalatesOnlyOnFastRelapse) {
  FlocConfig cfg = base_cfg();
  cfg.backoff_release = true;
  cfg.backoff_decay = 1000.0;  // no decay inside the test
  FlocQueue q(cfg);
  const PathId good = PathId::of({1, 10});
  const PathId bad = PathId::of({2, 20});

  drive_flood(q, 0.0, 2.0, bad, good);
  ASSERT_TRUE(q.is_attack_path(bad));
  EXPECT_EQ(q.backoff_multiplier(bad), 1);  // first latch never escalates
  EXPECT_EQ(q.release_required(bad), cfg.attack_release);

  // Calm long enough to release, then relapse immediately: escalation.
  drive_flood(q, 2.0, 2.5, bad, good, /*flood_on=*/false);
  ASSERT_FALSE(q.is_attack_path(bad));
  drive_flood(q, 2.5, 4.0, bad, good);
  ASSERT_TRUE(q.is_attack_path(bad));
  EXPECT_EQ(q.backoff_multiplier(bad), 2);
  EXPECT_EQ(q.release_required(bad), 2 * cfg.attack_release);

  // Second fast relapse: doubles again.
  drive_flood(q, 4.0, 4.6, bad, good, /*flood_on=*/false);
  ASSERT_FALSE(q.is_attack_path(bad));
  drive_flood(q, 4.6, 6.0, bad, good);
  ASSERT_TRUE(q.is_attack_path(bad));
  EXPECT_EQ(q.backoff_multiplier(bad), 4);

  // A path with no offense record is untouched.
  EXPECT_EQ(q.backoff_multiplier(good), 1);
  EXPECT_EQ(q.release_required(good), cfg.attack_release);
}

// Scripted duty-cycle scenario: the attacker blasts for 1s and goes quiet
// for 0.45s — just above the base release hysteresis (4 ticks x 50ms), the
// optimal open-loop gaming of a FIXED release. Under exponential backoff
// each relapse doubles the calm requirement, so the quiet phase stops being
// enough and the path stays confined: per-cycle admitted attack traffic
// must decay to a small fraction of the first cycle's.
TEST(HardeningBackoff, DutyCycledGoodputDecaysGeometrically) {
  FlocConfig cfg = base_cfg();
  cfg.backoff_release = true;
  cfg.backoff_decay = 1000.0;
  FlocQueue q(cfg);
  const PathId good = PathId::of({1, 10});
  const PathId bad = PathId::of({2, 20});

  std::vector<int> admitted_per_cycle;
  const double dt = 1.0 / 2500.0;
  double next_service = 0.0;
  for (int cycle = 0; cycle < 6; ++cycle) {
    const double t0 = cycle * 1.45;
    int admitted = 0;
    for (double t = t0; t < t0 + 1.45; t += dt) {
      const bool blast = t - t0 < 1.0;
      if (blast && q.enqueue(data(100, bad, /*src=*/2), t)) ++admitted;
      // The conformant path keeps ticking the lazy control loop during the
      // quiet phase (calm streaks only accumulate when control runs).
      if (!q.enqueue(data(1, good, /*src=*/1), t)) {
        // ignore; only used to drive the clock
      }
      while (next_service <= t) {
        q.dequeue(next_service);
        next_service += 1.0 / 833.0;
      }
    }
    admitted_per_cycle.push_back(admitted);
  }
  ASSERT_EQ(admitted_per_cycle.size(), 6u);
  std::string cycles;
  for (int a : admitted_per_cycle) cycles += std::to_string(a) + " ";
  SCOPED_TRACE("admitted per cycle: " + cycles);
  EXPECT_GT(q.backoff_multiplier(bad), 1);
  // The first cycle pays the initial latch hysteresis, so the per-cycle
  // peak is within the first two cycles; escalation then doubles the calm
  // requirement past the quiet phase, and once the path can no longer
  // release, every later blast is confined to the strict token allocation.
  const double early = static_cast<double>(
      std::max(admitted_per_cycle[0], admitted_per_cycle[1]));
  EXPECT_LT(admitted_per_cycle[3], admitted_per_cycle[2]);
  for (int k = 3; k < 6; ++k) {
    EXPECT_LT(static_cast<double>(admitted_per_cycle[k]), 0.6 * early)
        << "cycle " << k;
  }
}

// --- Offender blacklist ----------------------------------------------------

TEST(HardeningBlacklist, StrikesAreRateLimitedThenSentenceExpires) {
  FlocConfig cfg = base_cfg();
  cfg.enable_blacklist = true;
  cfg.blacklist_strikes = 12;
  cfg.blacklist_duration = 2.0;
  FlocQueue q(cfg);
  const PathId good = PathId::of({1, 10});
  const PathId bad = PathId::of({2, 20});

  // A short flood drops far more than `blacklist_strikes` packets, but
  // strikes are capped at one per control interval: 0.5s of flood is at
  // most ~10 strikes, no sentence yet.
  drive_flood(q, 0.0, 0.5, bad, good);
  EXPECT_FALSE(q.is_blacklisted(2, 0.5));
  EXPECT_EQ(q.blacklist_size(0.5), 0u);

  // Sustained flood: strikes reach the threshold, sender 2 is sentenced and
  // its packets are dropped on sight.
  drive_flood(q, 0.5, 2.0, bad, good);
  ASSERT_TRUE(q.is_blacklisted(2, 2.0));
  EXPECT_EQ(q.blacklist_size(2.0), 1u);
  EXPECT_FALSE(q.is_blacklisted(1, 2.0));  // the conformant sender is not
  const std::uint64_t bl_before = q.drops_by_reason(DropReason::kBlacklist);
  EXPECT_FALSE(q.enqueue(data(100, bad, /*src=*/2), 2.0));
  EXPECT_EQ(q.drops_by_reason(DropReason::kBlacklist), bl_before + 1);

  // The flood stops; the sentence (at most t<2.0 plus blacklist_duration)
  // expires with no new strikes to renew it.
  EXPECT_FALSE(q.is_blacklisted(2, 5.5));
  EXPECT_EQ(q.blacklist_size(5.5), 0u);
}

// --- Reboot persistence (FaultPlan-driven) ---------------------------------

// The offense record and the blacklist are issued verdicts, not re-derivable
// soft state: after a FaultPlan reboot mid-attack, the blacklist still
// stands, and as soon as the path is relearned its latched flag and backoff
// multiplier are restored instead of re-running the hysteresis from zero.
TEST(HardeningReboot, OffenseAndBlacklistSurviveFaultPlanReboot) {
  FlocConfig cfg = base_cfg();
  cfg.backoff_release = true;
  cfg.backoff_decay = 1000.0;
  cfg.enable_blacklist = true;
  FlocQueue q(cfg);
  const PathId good = PathId::of({1, 10});
  const PathId bad = PathId::of({2, 20});

  // Latch, escalate once, and get the flooder blacklisted.
  drive_flood(q, 0.0, 2.0, bad, good);
  drive_flood(q, 2.0, 2.5, bad, good, /*flood_on=*/false);
  drive_flood(q, 2.5, 5.0, bad, good);
  ASSERT_TRUE(q.is_attack_path(bad));
  ASSERT_EQ(q.backoff_multiplier(bad), 2);
  ASSERT_TRUE(q.is_blacklisted(2, 5.0));

  // Reboot through a FaultPlan on a simulator clock, as the churn suite
  // does, rather than by calling reboot() directly.
  Simulator sim;
  FaultPlan plan;
  plan.add_reboot(&q, 5.5);
  plan.install(&sim);
  sim.run_until(6.0);
  ASSERT_EQ(q.reboots(), 1u);
  EXPECT_EQ(q.active_origin_path_count(), 0);  // soft state is gone

  // The sender verdict survived the reboot outright.
  EXPECT_TRUE(q.is_blacklisted(2, 6.0));

  // One relearning interval later the path is latched again with its
  // multiplier intact — far sooner than the attack_latch hysteresis could
  // possibly re-derive it.
  drive_flood(q, 6.0, 6.2, bad, good);
  EXPECT_TRUE(q.is_attack_path(bad));
  EXPECT_EQ(q.backoff_multiplier(bad), 2);

  // Default config (hardening off) keeps the seed behavior: a reboot wipes
  // the latch and the hysteresis starts over (covered by FlocReboot tests).
}

}  // namespace
}  // namespace floc
