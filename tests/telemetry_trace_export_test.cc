// Trace exporters, validated by parsing: chrome_trace_json() must be real
// Chrome trace-event JSON (a minimal recursive-descent parser asserts the
// schema event by event), and a fig06-style TreeScenario run must contain at
// least one full causal chain — TCP send span -> queue-residency span with
// the FLoc admission verdict (mode; DropReason on drops) -> link
// serialization slice. spans_csv() is checked for shape on the same data.
#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/trace_export.h"
#include "telemetry/tracing.h"
#include "topology/tree_scenario.h"

namespace floc::telemetry {
namespace {

// --- Minimal JSON parser (objects/arrays/strings/numbers/bools/null) -------

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;

  const JsonValue* get(const std::string& key) const {
    const auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();  // no trailing garbage
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool string(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '/': c = '/'; break;
          default: return false;  // \uXXXX etc. not produced by the exporter
        }
      }
      *out += c;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool value(JsonValue* out) {
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out->kind = JsonValue::kString;
      return string(&out->str);
    }
    if (literal("true")) {
      out->kind = JsonValue::kBool;
      out->boolean = true;
      return true;
    }
    if (literal("false")) {
      out->kind = JsonValue::kBool;
      out->boolean = false;
      return true;
    }
    if (literal("null")) {
      out->kind = JsonValue::kNull;
      return true;
    }
    char* end = nullptr;
    out->number = std::strtod(s_.c_str() + pos_, &end);
    if (end == s_.c_str() + pos_) return false;
    pos_ = static_cast<std::size_t>(end - s_.c_str());
    out->kind = JsonValue::kNumber;
    return true;
  }
  bool object(JsonValue* out) {
    out->kind = JsonValue::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!value(&v)) return false;
      out->fields.emplace(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool array(JsonValue* out) {
    out->kind = JsonValue::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue v;
      if (!value(&v)) return false;
      out->items.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// Every trace event must carry the fields its phase requires.
void check_event_schema(const JsonValue& ev) {
  ASSERT_EQ(ev.kind, JsonValue::kObject);
  const JsonValue* ph = ev.get("ph");
  ASSERT_NE(ph, nullptr);
  ASSERT_EQ(ph->kind, JsonValue::kString);
  const JsonValue* name = ev.get("name");
  ASSERT_NE(name, nullptr);
  const JsonValue* pid = ev.get("pid");
  ASSERT_NE(pid, nullptr);
  EXPECT_EQ(pid->kind, JsonValue::kNumber);
  if (ph->str == "M") return;  // metadata: name/pid/args only
  ASSERT_NE(ev.get("ts"), nullptr);
  EXPECT_EQ(ev.get("ts")->kind, JsonValue::kNumber);
  ASSERT_NE(ev.get("tid"), nullptr);
  if (ph->str == "X") {
    ASSERT_NE(ev.get("dur"), nullptr);
    EXPECT_GE(ev.get("dur")->number, 0.0);
  } else if (ph->str == "b" || ph->str == "e") {
    ASSERT_NE(ev.get("id"), nullptr);  // async pairing key
  } else {
    FAIL() << "unexpected phase '" << ph->str << "'";
  }
}

TEST(TraceExport, HandBuiltSpansExportValidChromeJson) {
  Tracer tr;
  const SpanId send = tr.begin(1.0, 7, 0, SpanKind::kTcpSend, 2, 7, 11, 1500);
  const SpanId queue = tr.begin(1.1, 7, send, SpanKind::kQueue, 3, 0);
  tr.annotate(queue, "mode", "congested");
  tr.end(queue, 1.2);
  tr.complete(1.2, 1.25, 7, queue, SpanKind::kLinkTx, 3, 0, 11, 1500);
  tr.end(send, 1.5);
  const SpanId dropped = tr.begin(2.0, 8, 0, SpanKind::kQueue, 3, 0);
  tr.annotate(dropped, "esc\"ape\\check", "line\nbreak");
  tr.end_dropped(dropped, 2.1, 1, "queue-full");

  TraceExportOptions opts;
  opts.process_names.emplace_back(3, "router \"R\"");
  const std::string json = chrome_trace_json(tr, opts);

  JsonValue root;
  ASSERT_TRUE(JsonParser(json).parse(&root)) << json;
  ASSERT_EQ(root.kind, JsonValue::kObject);
  const JsonValue* events = root.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::kArray);

  int meta = 0, complete = 0, begins = 0, ends = 0;
  for (const JsonValue& ev : events->items) {
    check_event_schema(ev);
    const std::string& ph = ev.get("ph")->str;
    if (ph == "M") ++meta;
    if (ph == "X") ++complete;
    if (ph == "b") ++begins;
    if (ph == "e") ++ends;
  }
  EXPECT_EQ(meta, 1);
  EXPECT_EQ(complete, 1);  // the one kLinkTx span
  EXPECT_EQ(begins, 3);    // send, queue, dropped-queue
  EXPECT_EQ(begins, ends); // async pairs balance

  // The dropped span's verdict survives escaping and lands in args.
  bool saw_drop_annot = false;
  for (const JsonValue& ev : events->items) {
    const JsonValue* args = ev.get("args");
    if (args == nullptr) continue;
    const JsonValue* annot = args->get("annot");
    if (annot != nullptr &&
        annot->str.find("drop=queue-full") != std::string::npos) {
      saw_drop_annot = true;
      EXPECT_EQ(args->get("status")->number, 1.0);
    }
  }
  EXPECT_TRUE(saw_drop_annot);
}

TEST(TraceExport, Fig06ScenarioProducesFullSpanChain) {
  // Shrunk fig06(b): CBR flood over the FLoc-defended target link, long
  // enough for handshakes, data, ACKs, and congestion drops.
  TreeScenarioConfig cfg;
  cfg.tree_degree = 3;
  cfg.tree_height = 2;  // 9 leaves
  cfg.legit_per_leaf = 2;
  cfg.attack_leaf_count = 2;
  cfg.attack_per_leaf = 3;
  cfg.target_link = mbps(10);
  cfg.internal_link = mbps(40);
  cfg.access_link = mbps(5);
  cfg.legit_file_bytes = 200'000;
  cfg.legit_start_spread = 1.0;
  cfg.attack = AttackType::kCbr;
  cfg.attack_rate = mbps(2.0);
  cfg.attack_start = 2.0;
  cfg.scheme = DefenseScheme::kFloc;
  cfg.duration = 12.0;
  cfg.measure_start = 2.0;
  cfg.measure_end = 12.0;
  TreeScenario s(cfg);

  Tracer tracer;
  s.attach_tracer(&tracer);
  s.run();

  ASSERT_GT(tracer.count(SpanKind::kTcpSend), 0u);
  ASSERT_GT(tracer.count(SpanKind::kQueue), 0u);
  ASSERT_GT(tracer.count(SpanKind::kLinkTx), 0u);
  ASSERT_GT(tracer.dropped(), 0u) << "flood did not cause traced drops";

  // Index closed spans and hunt for one full causal chain:
  // tcp.send -> queue (FLoc verdict annotated) -> link.tx.
  std::map<SpanId, const Span*> by_id;
  for (const Span& sp : tracer.spans()) by_id.emplace(sp.id, &sp);
  bool chain = false;
  for (const Span& sp : tracer.spans()) {
    if (sp.kind != SpanKind::kLinkTx || sp.parent == 0) continue;
    const auto qit = by_id.find(sp.parent);
    if (qit == by_id.end() || qit->second->kind != SpanKind::kQueue) continue;
    const Span& q = *qit->second;
    if (q.annot.find("mode=") == std::string::npos) continue;
    if (q.annot.find("verdict=admit") == std::string::npos) continue;
    const auto tit = by_id.find(q.parent);
    if (tit == by_id.end() || tit->second->kind != SpanKind::kTcpSend) continue;
    chain = true;
    break;
  }
  EXPECT_TRUE(chain) << "no tcp.send -> queue -> link.tx chain found";

  // A traced drop carries the FLoc verdict: mode plus the DropReason.
  bool dropped_with_reason = false;
  for (const Span& sp : tracer.spans()) {
    if (sp.kind == SpanKind::kQueue && sp.status != 0 &&
        sp.annot.find("mode=") != std::string::npos &&
        sp.annot.find("drop=") != std::string::npos) {
      dropped_with_reason = true;
      break;
    }
  }
  EXPECT_TRUE(dropped_with_reason);

  // The whole run exports as parseable Chrome trace JSON...
  TraceExportOptions opts;
  opts.process_names.emplace_back(s.target_link()->to()->id(), "target");
  const std::string json = chrome_trace_json(tracer, opts);
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).parse(&root));
  const JsonValue* events = root.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_GT(events->items.size(), 10u);
  for (const JsonValue& ev : events->items) check_event_schema(ev);

  // ...and as the flat CSV with one row per closed span.
  const std::string csv = spans_csv(tracer);
  ASSERT_EQ(csv.rfind("trace,span,parent,kind,", 0), 0u);
  std::size_t rows = 0;
  for (char c : csv) rows += c == '\n' ? 1 : 0;
  EXPECT_EQ(rows, tracer.spans().size() + 1);  // header + rows
}

}  // namespace
}  // namespace floc::telemetry
