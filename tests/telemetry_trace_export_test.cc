// Trace exporters, validated by parsing: chrome_trace_json() must be real
// Chrome trace-event JSON (util/json parses it and the schema is asserted
// event by event), and a fig06-style TreeScenario run must contain at
// least one full causal chain — TCP send span -> queue-residency span with
// the FLoc admission verdict (mode; DropReason on drops) -> link
// serialization slice. spans_csv() is checked for shape on the same data.
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "telemetry/trace_export.h"
#include "telemetry/tracing.h"
#include "topology/tree_scenario.h"
#include "util/json.h"

namespace floc::telemetry {
namespace {

// Every trace event must carry the fields its phase requires.
void check_event_schema(const json::Value& ev) {
  ASSERT_EQ(ev.kind, json::Value::kObject);
  const json::Value* ph = ev.get("ph");
  ASSERT_NE(ph, nullptr);
  ASSERT_EQ(ph->kind, json::Value::kString);
  const json::Value* name = ev.get("name");
  ASSERT_NE(name, nullptr);
  const json::Value* pid = ev.get("pid");
  ASSERT_NE(pid, nullptr);
  EXPECT_EQ(pid->kind, json::Value::kNumber);
  if (ph->str == "M") return;  // metadata: name/pid/args only
  ASSERT_NE(ev.get("ts"), nullptr);
  EXPECT_EQ(ev.get("ts")->kind, json::Value::kNumber);
  ASSERT_NE(ev.get("tid"), nullptr);
  if (ph->str == "X") {
    ASSERT_NE(ev.get("dur"), nullptr);
    EXPECT_GE(ev.get("dur")->number, 0.0);
  } else if (ph->str == "b" || ph->str == "e") {
    ASSERT_NE(ev.get("id"), nullptr);  // async pairing key
  } else {
    FAIL() << "unexpected phase '" << ph->str << "'";
  }
}

TEST(TraceExport, HandBuiltSpansExportValidChromeJson) {
  Tracer tr;
  const SpanId send = tr.begin(1.0, 7, 0, SpanKind::kTcpSend, 2, 7, 11, 1500);
  const SpanId queue = tr.begin(1.1, 7, send, SpanKind::kQueue, 3, 0);
  tr.annotate(queue, "mode", "congested");
  tr.end(queue, 1.2);
  tr.complete(1.2, 1.25, 7, queue, SpanKind::kLinkTx, 3, 0, 11, 1500);
  tr.end(send, 1.5);
  const SpanId dropped = tr.begin(2.0, 8, 0, SpanKind::kQueue, 3, 0);
  tr.annotate(dropped, "esc\"ape\\check", "line\nbreak");
  tr.end_dropped(dropped, 2.1, 1, "queue-full");

  TraceExportOptions opts;
  opts.process_names.emplace_back(3, "router \"R\"");
  const std::string out = chrome_trace_json(tr, opts);

  json::Value root;
  std::string err;
  ASSERT_TRUE(json::parse(out, &root, &err)) << err << "\n" << out;
  ASSERT_EQ(root.kind, json::Value::kObject);
  const json::Value* events = root.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, json::Value::kArray);

  int meta = 0, complete = 0, begins = 0, ends = 0;
  for (const json::Value& ev : events->items) {
    check_event_schema(ev);
    const std::string& ph = ev.get("ph")->str;
    if (ph == "M") ++meta;
    if (ph == "X") ++complete;
    if (ph == "b") ++begins;
    if (ph == "e") ++ends;
  }
  EXPECT_EQ(meta, 1);
  EXPECT_EQ(complete, 1);  // the one kLinkTx span
  EXPECT_EQ(begins, 3);    // send, queue, dropped-queue
  EXPECT_EQ(begins, ends); // async pairs balance

  // The dropped span's verdict survives escaping and lands in args.
  bool saw_drop_annot = false;
  for (const json::Value& ev : events->items) {
    const json::Value* args = ev.get("args");
    if (args == nullptr) continue;
    const json::Value* annot = args->get("annot");
    if (annot != nullptr &&
        annot->str.find("drop=queue-full") != std::string::npos) {
      saw_drop_annot = true;
      EXPECT_EQ(args->get("status")->number, 1.0);
    }
  }
  EXPECT_TRUE(saw_drop_annot);
}

TEST(TraceExport, EmptyTracerExportsHeaderOnlyCsvAndValidJson) {
  // A tracer that never recorded a span (the detached/idle case every bench
  // hits with tracing off) must still export well-formed artifacts: the CSV
  // is exactly its header line and the Chrome trace parses with an empty
  // traceEvents array.
  Tracer tr;
  ASSERT_EQ(tr.spans().size(), 0u);

  const std::string csv = spans_csv(tr);
  EXPECT_EQ(csv, "trace,span,parent,kind,pid,tid,begin,end,seq,bytes,status,"
                 "annot\n");

  const std::string out = chrome_trace_json(tr);
  json::Value root;
  std::string err;
  ASSERT_TRUE(json::parse(out, &root, &err)) << err << "\n" << out;
  const json::Value* events = root.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, json::Value::kArray);
  EXPECT_EQ(events->items.size(), 0u);

  // Metadata-only export (process names but no spans) is also valid.
  TraceExportOptions opts;
  opts.process_names.emplace_back(1, "router");
  const std::string named = chrome_trace_json(tr, opts);
  json::Value named_root;
  ASSERT_TRUE(json::parse(named, &named_root, &err)) << err;
  ASSERT_EQ(named_root.get("traceEvents")->items.size(), 1u);
  EXPECT_EQ(named_root.get("traceEvents")->items[0].string_or("ph", ""), "M");
}

TEST(TraceExport, ExportSurvivesRingEviction) {
  // A saturated span ring (capacity 4, 10 closed spans pushed through) must
  // export only the survivors, still with balanced async pairs and a CSV
  // row per kept span.
  Tracer tr(4);
  for (int i = 0; i < 10; ++i) {
    const SpanId id = tr.begin(static_cast<double>(i), 1, 0, SpanKind::kQueue,
                               1, 0);
    tr.end(id, static_cast<double>(i) + 0.5);
  }
  ASSERT_EQ(tr.spans().size(), 4u);

  const std::string csv = spans_csv(tr);
  std::size_t rows = 0;
  for (char c : csv) rows += c == '\n' ? 1 : 0;
  EXPECT_EQ(rows, 5u);  // header + the 4 surviving spans

  const std::string out = chrome_trace_json(tr);
  json::Value root;
  std::string err;
  ASSERT_TRUE(json::parse(out, &root, &err)) << err;
  int begins = 0, ends = 0;
  for (const json::Value& ev : root.get("traceEvents")->items) {
    check_event_schema(ev);
    if (ev.get("ph")->str == "b") ++begins;
    if (ev.get("ph")->str == "e") ++ends;
  }
  EXPECT_EQ(begins, 4);
  EXPECT_EQ(begins, ends);
}

TEST(TraceExport, Fig06ScenarioProducesFullSpanChain) {
  // Shrunk fig06(b): CBR flood over the FLoc-defended target link, long
  // enough for handshakes, data, ACKs, and congestion drops.
  TreeScenarioConfig cfg;
  cfg.tree_degree = 3;
  cfg.tree_height = 2;  // 9 leaves
  cfg.legit_per_leaf = 2;
  cfg.attack_leaf_count = 2;
  cfg.attack_per_leaf = 3;
  cfg.target_link = mbps(10);
  cfg.internal_link = mbps(40);
  cfg.access_link = mbps(5);
  cfg.legit_file_bytes = 200'000;
  cfg.legit_start_spread = 1.0;
  cfg.attack = AttackType::kCbr;
  cfg.attack_rate = mbps(2.0);
  cfg.attack_start = 2.0;
  cfg.scheme = DefenseScheme::kFloc;
  cfg.duration = 12.0;
  cfg.measure_start = 2.0;
  cfg.measure_end = 12.0;
  TreeScenario s(cfg);

  Tracer tracer;
  s.attach_tracer(&tracer);
  s.run();

  ASSERT_GT(tracer.count(SpanKind::kTcpSend), 0u);
  ASSERT_GT(tracer.count(SpanKind::kQueue), 0u);
  ASSERT_GT(tracer.count(SpanKind::kLinkTx), 0u);
  ASSERT_GT(tracer.dropped(), 0u) << "flood did not cause traced drops";

  // Index closed spans and hunt for one full causal chain:
  // tcp.send -> queue (FLoc verdict annotated) -> link.tx.
  std::map<SpanId, const Span*> by_id;
  for (const Span& sp : tracer.spans()) by_id.emplace(sp.id, &sp);
  bool chain = false;
  for (const Span& sp : tracer.spans()) {
    if (sp.kind != SpanKind::kLinkTx || sp.parent == 0) continue;
    const auto qit = by_id.find(sp.parent);
    if (qit == by_id.end() || qit->second->kind != SpanKind::kQueue) continue;
    const Span& q = *qit->second;
    if (q.annot.find("mode=") == std::string::npos) continue;
    if (q.annot.find("verdict=admit") == std::string::npos) continue;
    const auto tit = by_id.find(q.parent);
    if (tit == by_id.end() || tit->second->kind != SpanKind::kTcpSend) continue;
    chain = true;
    break;
  }
  EXPECT_TRUE(chain) << "no tcp.send -> queue -> link.tx chain found";

  // A traced drop carries the FLoc verdict: mode plus the DropReason.
  bool dropped_with_reason = false;
  for (const Span& sp : tracer.spans()) {
    if (sp.kind == SpanKind::kQueue && sp.status != 0 &&
        sp.annot.find("mode=") != std::string::npos &&
        sp.annot.find("drop=") != std::string::npos) {
      dropped_with_reason = true;
      break;
    }
  }
  EXPECT_TRUE(dropped_with_reason);

  // The whole run exports as parseable Chrome trace JSON...
  TraceExportOptions opts;
  opts.process_names.emplace_back(s.target_link()->to()->id(), "target");
  const std::string out = chrome_trace_json(tracer, opts);
  json::Value root;
  std::string err;
  ASSERT_TRUE(json::parse(out, &root, &err)) << err;
  const json::Value* events = root.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_GT(events->items.size(), 10u);
  for (const json::Value& ev : events->items) check_event_schema(ev);

  // ...and as the flat CSV with one row per closed span.
  const std::string csv = spans_csv(tracer);
  ASSERT_EQ(csv.rfind("trace,span,parent,kind,", 0), 0u);
  std::size_t rows = 0;
  for (char c : csv) rows += c == '\n' ? 1 : 0;
  EXPECT_EQ(rows, tracer.spans().size() + 1);  // header + rows
}

}  // namespace
}  // namespace floc::telemetry
