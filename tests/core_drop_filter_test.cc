#include "core/drop_filter.h"

#include <gtest/gtest.h>

#include <cmath>

namespace floc {
namespace {

DropFilterConfig small_filter() {
  DropFilterConfig cfg;
  cfg.arrays = 4;
  cfg.bits = 12;  // 4096 entries per array: small for tests
  cfg.tick = 0.01;
  return cfg;
}

TEST(DropFilter, UnknownFlowHasNoExtraDrops) {
  ScalableDropFilter f(small_filter());
  const auto e = f.query(123, 1.0, 0.5);
  EXPECT_DOUBLE_EQ(e.extra_drops, 0.0);
  EXPECT_DOUBLE_EQ(f.preferential_drop_prob(123, 1.0, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(f.over_rate(123, 1.0, 0.5), 1.0);
}

TEST(DropFilter, ConformantFlowDecaysToZero) {
  // One drop per congestion epoch is exactly conformant: counter decays as
  // fast as it grows, so extra drops stay ~O(1).
  ScalableDropFilter f(small_filter());
  const double epoch = 0.5;
  for (int i = 1; i <= 20; ++i) f.record_drop(1, i * epoch, epoch);
  EXPECT_LE(f.query(1, 20 * epoch + epoch, epoch).extra_drops, 1.5);
  // Long silence: preferential drop probability decays away entirely.
  EXPECT_DOUBLE_EQ(f.preferential_drop_prob(1, 20 * epoch + 10 * epoch, epoch),
                   0.0);
}

TEST(DropFilter, AggressiveFlowAccumulates) {
  ScalableDropFilter f(small_filter());
  const double epoch = 0.5;
  // 10 drops per epoch for 5 epochs: ~9 extra drops per epoch accumulate.
  for (int e = 0; e < 5; ++e) {
    for (int d = 0; d < 10; ++d) f.record_drop(2, e * epoch + d * 0.01, epoch);
  }
  const auto est = f.query(2, 5 * epoch, epoch);
  EXPECT_GT(est.extra_drops, 20.0);
  EXPECT_GT(f.preferential_drop_prob(2, 5 * epoch, epoch), 0.5);
  EXPECT_GT(f.over_rate(2, 5 * epoch, epoch), 3.0);
}

TEST(DropFilter, PreferentialDropOrdersFlowsByRate) {
  ScalableDropFilter f(small_filter());
  const double epoch = 0.5;
  for (int e = 0; e < 10; ++e) {
    for (int d = 0; d < 2; ++d) f.record_drop(10, e * epoch + d * 0.02, epoch);
    for (int d = 0; d < 8; ++d) f.record_drop(20, e * epoch + d * 0.02, epoch);
  }
  EXPECT_LT(f.preferential_drop_prob(10, 5.0, epoch),
            f.preferential_drop_prob(20, 5.0, epoch));
}

TEST(DropFilter, PpdFormula) {
  // P = d/(t_s + d): with d extra drops over t_s epochs a flow sends
  // (t_s+d)/t_s times fair; dropping that fraction caps it at fair rate.
  ScalableDropFilter f(small_filter());
  const double epoch = 1.0;
  // Record 5 drops quickly at t ~ epoch: t_s ~= 1, d ~= 4-5.
  for (int d = 0; d < 5; ++d) f.record_drop(3, 1.0 + d * 0.001, epoch);
  const auto est = f.query(3, 1.01, epoch);
  const double expect = est.extra_drops / (est.epochs + est.extra_drops);
  EXPECT_NEAR(f.preferential_drop_prob(3, 1.01, epoch), expect, 1e-9);
  EXPECT_GT(expect, 0.5);
}

TEST(DropFilter, CountMinNoUnderestimateSingleFlow) {
  ScalableDropFilter f(small_filter());
  for (int i = 0; i < 50; ++i) f.record_drop(4, 1.0 + i * 1e-4, 10.0);
  // All drops land within a fraction of an epoch: d should be ~49-50.
  EXPECT_GT(f.query(4, 1.01, 10.0).extra_drops, 40.0);
}

TEST(DropFilter, FalsePositiveRatioFormula) {
  // Paper's numbers (Section V-B.5): m=4, b=24 => 0.5M flows: ~7.4e-7.
  const double p1 = ScalableDropFilter::false_positive_ratio(5e5, 4, 24);
  EXPECT_NEAR(p1, 7.4e-7, 2e-7);
  const double p2 = ScalableDropFilter::false_positive_ratio(4e6, 4, 24);
  EXPECT_GT(p2, p1);
  EXPECT_LT(p2, 1e-2);
}

TEST(DropFilter, ArraysForAttackDomains) {
  // k such that n - nA + nA*k/m <= threshold.
  EXPECT_EQ(ScalableDropFilter::arrays_for_attack_domains(4e6, 3.9e6, 4, 1.5e6),
            1);
  EXPECT_EQ(ScalableDropFilter::arrays_for_attack_domains(1e6, 5e5, 4, 2e6), 1);
  // Impossible threshold -> m.
  EXPECT_EQ(ScalableDropFilter::arrays_for_attack_domains(4e6, 1e5, 4, 1e5), 4);
}

TEST(DropFilter, MemoryBytesScalesWithConfig) {
  DropFilterConfig a = small_filter();
  DropFilterConfig b = small_filter();
  b.bits = a.bits + 1;
  EXPECT_EQ(ScalableDropFilter(b).memory_bytes(),
            2 * ScalableDropFilter(a).memory_bytes());
}

TEST(DropFilter, ProbabilisticUpdatePreservesExpectation) {
  DropFilterConfig cfg = small_filter();
  cfg.probabilistic_update = true;
  ScalableDropFilter prob(cfg);
  cfg.probabilistic_update = false;
  ScalableDropFilter exact(cfg);
  const double epoch = 10.0;
  for (int i = 0; i < 400; ++i) {
    prob.record_drop(7, 1.0 + i * 0.001, epoch);
    exact.record_drop(7, 1.0 + i * 0.001, epoch);
  }
  const double pe = prob.query(7, 1.5, epoch).extra_drops;
  const double ee = exact.query(7, 1.5, epoch).extra_drops;
  // Counter caps at 2^drop_bits-1=255; both near the cap despite fewer
  // memory updates in probabilistic mode.
  EXPECT_NEAR(pe, ee, 0.35 * ee);
  EXPECT_LT(prob.updates(), exact.updates());
}

TEST(DropFilter, AttackDomainSubsetUpdates) {
  DropFilterConfig cfg = small_filter();
  cfg.drop_bits = 12;  // avoid counter saturation for this check
  ScalableDropFilter f(cfg);
  f.set_attack_domain_arrays(2);
  const double epoch = 10.0;
  const int drops = 800;
  for (int i = 0; i < drops; ++i)
    f.record_drop_attack_domain(9, 1.0 + i * 0.0001, epoch);
  // Probability-k/m + value-m/k updates preserve the expectation, and the
  // subset-aware query reads the same arrays the updates touched.
  const auto est = f.query_attack_domain(9, 1.09, epoch);
  EXPECT_NEAR(est.extra_drops, drops, 0.3 * drops);
  // A full-array query would min over untouched arrays and see nothing.
  EXPECT_DOUBLE_EQ(f.query(9, 1.09, epoch).extra_drops, 0.0);
}

}  // namespace
}  // namespace floc
