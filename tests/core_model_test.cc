#include "core/model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace floc::model {
namespace {

constexpr int kPkt = 1500;

TEST(Model, PeakWindowFromBandwidth) {
  // n flows at mean window 3W/4: c = n*(3W/4)*pkt*8/RTT.
  const double w = peak_window(mbps(12), 0.1, 10.0, kPkt);
  const double c_check = 10.0 * (3.0 * w / 4.0) * kPkt * 8.0 / 0.1;
  EXPECT_NEAR(c_check, mbps(12), 1.0);
}

TEST(Model, MtdIsHalfWindowOfRtts) {
  EXPECT_DOUBLE_EQ(flow_mtd(20.0, 0.1), 1.0);
}

TEST(Model, TokenPeriodEqIV1) {
  // T = (W/2)*RTT/n.
  EXPECT_DOUBLE_EQ(token_period(20.0, 0.1, 10.0), 0.1);
  // Equivalent closed form T = (2/3) * C_pkts * RTT^2 / n^2.
  const double c = mbps(12);
  const double n = 8.0, rtt = 0.08;
  const double w = peak_window(c, rtt, n, kPkt);
  const double c_pkts = c / (8.0 * kPkt);
  EXPECT_NEAR(token_period(w, rtt, n), (2.0 / 3.0) * c_pkts * rtt * rtt / (n * n),
              1e-12);
}

TEST(Model, BucketEqualsCapacityTimesPeriod) {
  EXPECT_NEAR(bucket_packets(mbps(12), 0.05, kPkt),
              mbps(12) * 0.05 / (8.0 * kPkt), 1e-9);
}

TEST(Model, IncreaseFactorEqIV3) {
  // (1 + 2/(3*sqrt(n))) — decreasing in n, ->1 as n grows.
  EXPECT_NEAR(bucket_increase_factor(1.0), 1.0 + 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(bucket_increase_factor(9.0), 1.0 + 2.0 / 9.0, 1e-12);
  EXPECT_GT(bucket_increase_factor(4.0), bucket_increase_factor(100.0));
  EXPECT_NEAR(bucket_increase_factor(1e12), 1.0, 1e-5);
}

TEST(Model, DropRatioMatchesEpochLength) {
  // One drop per (3/8)W(W+2) packets.
  for (double w : {4.0, 10.0, 30.0}) {
    EXPECT_NEAR(drop_ratio(w) * (3.0 / 8.0) * w * (w + 2.0), 1.0, 1e-12);
  }
}

TEST(Model, DropRatioDecreasesWithWindow) {
  EXPECT_GT(drop_ratio(4.0), drop_ratio(8.0));
  EXPECT_GT(drop_ratio(8.0), drop_ratio(64.0));
}

TEST(Model, AggregateDropRate) {
  // n drops per (W/2)*RTT seconds.
  EXPECT_DOUBLE_EQ(aggregate_drop_rate(20.0, 0.1, 10.0), 10.0);
}

TEST(Model, FlowCountEstimateInvertsDropRate) {
  // Round-trip: n -> drop rate -> estimate ~= n (scalable design, V-B.1).
  const double c = mbps(100), rtt = 0.06;
  for (double n : {5.0, 20.0, 80.0}) {
    const double w = peak_window(c, rtt, n, kPkt);
    const double rate = aggregate_drop_rate(w, rtt, n);
    EXPECT_NEAR(estimate_flow_count(c, rtt, rate, kPkt), n, 0.01 * n);
  }
}

TEST(Model, SynchronizationConstants) {
  EXPECT_DOUBLE_EQ(synchronized_utilization(), 0.75);
  EXPECT_DOUBLE_EQ(synchronized_peak_to_trough(), 2.0);
}

TEST(Model, ComputeParamsClampsWindow) {
  // Tiny bandwidth forces the W >= 2 clamp.
  const auto p = compute_params(kbps(10), 0.01, 100.0, kPkt);
  EXPECT_GE(p.peak_window, 2.0);
  EXPECT_GE(p.bucket_packets, 1.0);
}

TEST(Model, ComputeParamsClampsPeriod) {
  const auto fast = compute_params(gbps(40), 0.001, 1e6, kPkt);
  EXPECT_GE(fast.period, 1e-4);
  const auto slow = compute_params(kbps(1), 2.0, 1.0, kPkt);
  EXPECT_LE(slow.period, 1.0);
}

TEST(Model, RefMtdIsNTimesPeriod) {
  const auto p = compute_params(mbps(50), 0.08, 25.0, kPkt);
  EXPECT_NEAR(p.ref_mtd, 25.0 * p.period, 1e-12);
}

TEST(Model, IncreasedBucketLargerThanBase) {
  const auto p = compute_params(mbps(50), 0.08, 25.0, kPkt);
  EXPECT_GT(p.bucket_packets_incr, p.bucket_packets);
  EXPECT_NEAR(p.bucket_packets_incr / p.bucket_packets,
              bucket_increase_factor(25.0), 1e-9);
}

// Parameterized consistency sweep: bandwidth/RTT/flow-count grid.
struct ParamCase {
  double c_mbps, rtt, n;
};
class ModelParamSweep : public ::testing::TestWithParam<ParamCase> {};

TEST_P(ModelParamSweep, ParamsInternallyConsistent) {
  const auto [c_mbps, rtt, n] = GetParam();
  const auto p = compute_params(mbps(c_mbps), rtt, n, kPkt);
  // Bucket covers exactly the period's worth of capacity (unless clamped).
  const double c_pkts = mbps(c_mbps) / (8.0 * kPkt);
  if (p.bucket_packets > 1.0 + 1e-9) {
    EXPECT_NEAR(p.bucket_packets, c_pkts * p.period, 1e-6);
  }
  // MTD reference: W/2 * RTT when nothing (including the two-packet bucket
  // floor) clamps the period.
  const double unclamped = token_period(p.peak_window, rtt, n);
  if (p.peak_window > 2.0 + 1e-9 && std::abs(p.period - unclamped) < 1e-12) {
    EXPECT_NEAR(p.ref_mtd, p.peak_window / 2.0 * rtt, 1e-6);
  }
  EXPECT_GT(p.period, 0.0);
  EXPECT_GE(p.bucket_packets_incr, p.bucket_packets);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelParamSweep,
    ::testing::Values(ParamCase{10, 0.02, 5}, ParamCase{10, 0.1, 50},
                      ParamCase{100, 0.05, 10}, ParamCase{100, 0.2, 200},
                      ParamCase{500, 0.04, 30}, ParamCase{1000, 0.08, 500},
                      ParamCase{18.5, 0.05, 30}));  // Fig. 5 per-path numbers

}  // namespace
}  // namespace floc::model
