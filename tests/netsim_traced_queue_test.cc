// Decorator composition: TracedQueue wrapping a FlocQueue must be
// transparent to every observability surface at once — ns-2-style event
// records (its own job), drop handlers, QueueDisc counters, the metric
// registry, SimMonitor invariant audits, and causal span tracing all reach
// or reflect the inner discipline.
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/floc_queue.h"
#include "faultsim/sim_monitor.h"
#include "netsim/trace.h"
#include "telemetry/metrics.h"
#include "telemetry/tracing.h"

namespace floc {
namespace {

FlocConfig tiny_cfg() {
  FlocConfig cfg;
  cfg.link_bandwidth = mbps(10);
  cfg.buffer_packets = 4;  // overflow quickly
  return cfg;
}

Packet make_packet(FlowId flow) {
  Packet p;
  p.flow = flow;
  p.src = static_cast<HostAddr>(flow + 1);
  p.dst = 42;
  p.path = PathId::of({1, 7});
  p.type = PacketType::kData;
  return p;
}

TEST(TracedQueueComposition, EventsDropsAndCountersReflectInnerFlocQueue) {
  TraceRecorder recorder;
  TracedQueue traced(std::make_unique<FlocQueue>(tiny_cfg()), &recorder);

  int handler_drops = 0;
  traced.set_drop_handler(
      [&handler_drops](const Packet&, DropReason, TimeSec) {
        ++handler_drops;
      });

  // Offer well past the 4-packet buffer without draining: overflow drops.
  std::uint64_t admitted = 0;
  for (int i = 0; i < 12; ++i) {
    if (traced.enqueue(make_packet(static_cast<FlowId>(i)), 0.01 * i)) {
      ++admitted;
    }
  }
  ASSERT_GT(admitted, 0u);
  ASSERT_LT(admitted, 12u);
  const std::uint64_t dropped = 12 - admitted;

  // Recorder saw exactly the admissions and (via the inner queue's drop
  // handler) the inner FlocQueue's drops, with the real reason.
  EXPECT_EQ(recorder.count(TraceEvent::kEnqueue), admitted);
  EXPECT_EQ(recorder.count(TraceEvent::kDrop), dropped);
  EXPECT_EQ(recorder.drops_by_reason(DropReason::kQueueFull), dropped);

  // The decorator forwards drops up its own note_drop chain: QueueDisc
  // counters and the user-installed drop handler both fire.
  EXPECT_EQ(traced.drops(), dropped);
  EXPECT_EQ(traced.admissions(), admitted);
  EXPECT_EQ(handler_drops, static_cast<int>(dropped));

  // Dequeue events come from the inner queue's packets.
  std::uint64_t drained = 0;
  while (traced.dequeue(1.0).has_value()) ++drained;
  EXPECT_EQ(drained, admitted);
  EXPECT_EQ(recorder.count(TraceEvent::kDequeue), admitted);
  EXPECT_TRUE(traced.empty());
}

TEST(TracedQueueComposition, RegisterMetricsDelegatesToInnerQueue) {
  TraceRecorder recorder;
  TracedQueue traced(std::make_unique<FlocQueue>(tiny_cfg()), &recorder);

  telemetry::MetricRegistry reg;
  traced.register_metrics(reg, "floc");
  ASSERT_NE(reg.find("floc.packets"), nullptr);
  ASSERT_NE(reg.find("floc.drops"), nullptr);

  for (int i = 0; i < 12; ++i) {
    traced.enqueue(make_packet(static_cast<FlowId>(i)), 0.01 * i);
  }
  // The gauges read the INNER discipline (where buffering and dropping
  // actually happen), not the decorator shell.
  EXPECT_DOUBLE_EQ(reg.value("floc.packets"),
                   static_cast<double>(traced.inner().packet_count()));
  EXPECT_DOUBLE_EQ(reg.value("floc.drops"),
                   static_cast<double>(traced.inner().drops()));
  EXPECT_GT(reg.value("floc.drops"), 0.0);
}

TEST(TracedQueueComposition, AuditDelegatesToInnerUnderSimMonitor) {
  TraceRecorder recorder;
  TracedQueue traced(std::make_unique<FlocQueue>(tiny_cfg()), &recorder);
  for (int i = 0; i < 8; ++i) {
    traced.enqueue(make_packet(static_cast<FlowId>(i)), 0.01 * i);
  }

  // Direct delegation: the decorator runs the FlocQueue's self-check.
  std::string why;
  EXPECT_TRUE(traced.audit(0.2, &why)) << why;

  // And through the monitor: a healthy wrapped queue raises no violations.
  SimMonitor mon;
  mon.set_report_stream(nullptr);
  mon.watch_queue("traced-floc", &traced);
  mon.run_checks(0.3);
  EXPECT_GT(mon.checks_run(), 0u);
  EXPECT_TRUE(mon.violations().empty());
}

TEST(TracedQueueComposition, SetTracerReachesInnerFlocVerdicts) {
  TraceRecorder recorder;
  TracedQueue traced(std::make_unique<FlocQueue>(tiny_cfg()), &recorder);
  telemetry::Tracer tracer;
  traced.set_tracer(&tracer);

  // Fill the buffer with traced packets until one is dropped; its queue
  // span must be terminated by the INNER FlocQueue with the admission
  // verdict (mode + drop reason), proving set_tracer propagated.
  telemetry::SpanId dropped_span = 0;
  for (int i = 0; i < 12 && dropped_span == 0; ++i) {
    Packet p = make_packet(static_cast<FlowId>(i));
    const telemetry::SpanId s =
        tracer.begin(0.01 * i, p.flow, 0, telemetry::SpanKind::kQueue, 1, 0);
    p.span = SpanContext{p.flow, s, 0};
    if (!traced.enqueue(std::move(p), 0.01 * i)) dropped_span = s;
  }
  ASSERT_NE(dropped_span, 0u);

  const telemetry::Span* sp = tracer.find(dropped_span);
  ASSERT_NE(sp, nullptr);
  EXPECT_NE(sp->status, 0u);
  EXPECT_NE(sp->annot.find("mode="), std::string::npos) << sp->annot;
  EXPECT_NE(sp->annot.find("verdict=drop"), std::string::npos) << sp->annot;
  EXPECT_NE(sp->annot.find("drop=queue-full"), std::string::npos) << sp->annot;
  EXPECT_EQ(tracer.dropped(), 1u);
}

}  // namespace
}  // namespace floc
