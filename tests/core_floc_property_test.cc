// Property-style sweeps (TEST_P) over the FLoc queue: invariants that must
// hold for any (bandwidth, buffer, paths, load) combination.
#include <gtest/gtest.h>

#include <set>

#include "core/floc_queue.h"
#include "util/rng.h"

namespace floc {
namespace {

struct QueueCase {
  double link_mbps;
  std::size_t buffer;
  int paths;
  double load_factor;  // offered / capacity
};

class FlocQueueSweep : public ::testing::TestWithParam<QueueCase> {};

Packet data(FlowId flow, const PathId& path, HostAddr src) {
  Packet p;
  p.flow = flow;
  p.src = src;
  p.dst = 9999;
  p.path = path;
  p.type = PacketType::kData;
  return p;
}

TEST_P(FlocQueueSweep, ConservationAndBounds) {
  const QueueCase c = GetParam();
  FlocConfig cfg;
  cfg.link_bandwidth = mbps(c.link_mbps);
  cfg.buffer_packets = c.buffer;
  cfg.control_interval = 0.1;
  FlocQueue q(cfg);

  std::vector<PathId> paths;
  for (int i = 0; i < c.paths; ++i)
    paths.push_back(PathId::of({static_cast<AsNumber>(i + 1),
                                static_cast<AsNumber>(100 + i)}));

  const double service_pps = cfg.link_bandwidth / (8.0 * 1500.0);
  const double offered_pps = service_pps * c.load_factor;
  const double dt = 1.0 / offered_pps;
  Rng rng(99);

  std::uint64_t offered = 0, admitted = 0, serviced = 0;
  double next_service = 0.0;
  double t = 0.0;
  for (int i = 0; i < 20000; ++i) {
    t = i * dt;
    const auto pi = rng.uniform_int(static_cast<std::uint64_t>(c.paths));
    ++offered;
    if (q.enqueue(data(static_cast<FlowId>(pi * 7 + 1),
                       paths[static_cast<std::size_t>(pi)],
                       static_cast<HostAddr>(pi + 1)),
                  t)) {
      ++admitted;
    }
    while (next_service <= t) {
      if (q.dequeue(next_service).has_value()) ++serviced;
      next_service += 1.0 / service_pps;
    }
    // Invariant: the buffer bound is never violated.
    ASSERT_LE(q.packet_count(), c.buffer);
  }
  // Conservation: admitted = serviced + still queued.
  EXPECT_EQ(admitted, serviced + q.packet_count());
  // Everything offered was either admitted or dropped.
  EXPECT_EQ(offered, admitted + q.drops());
  // Under overload some drops must occur; under light load almost none.
  if (c.load_factor > 1.3) {
    EXPECT_GT(q.drops(), 0u);
  } else if (c.load_factor < 0.5) {
    EXPECT_LT(static_cast<double>(q.drops()),
              0.05 * static_cast<double>(offered));
  }
}

TEST_P(FlocQueueSweep, ByteCountConsistent) {
  const QueueCase c = GetParam();
  FlocConfig cfg;
  cfg.link_bandwidth = mbps(c.link_mbps);
  cfg.buffer_packets = c.buffer;
  FlocQueue q(cfg);
  const PathId path = PathId::of({1});
  for (int i = 0; i < 50; ++i) q.enqueue(data(1, path, 1), 0.0001 * i);
  EXPECT_EQ(q.byte_count(), q.packet_count() * 1500u);
  while (!q.empty()) q.dequeue(1.0);
  EXPECT_EQ(q.byte_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FlocQueueSweep,
    ::testing::Values(QueueCase{5, 50, 1, 2.0}, QueueCase{5, 50, 4, 0.4},
                      QueueCase{20, 200, 8, 1.5}, QueueCase{20, 40, 2, 3.0},
                      QueueCase{100, 500, 16, 1.1},
                      QueueCase{100, 100, 27, 2.5}, QueueCase{1, 20, 1, 4.0},
                      QueueCase{50, 300, 9, 0.9}));

// Aggregation plans must satisfy structural invariants for random inputs.
struct PlanCase {
  int paths;
  int s_max;
  std::uint64_t seed;
};
class AggregationSweep : public ::testing::TestWithParam<PlanCase> {};

TEST_P(AggregationSweep, PlanInvariants) {
  const PlanCase pc = GetParam();
  Rng rng(pc.seed);
  std::vector<PathSnapshot> snaps;
  for (int i = 0; i < pc.paths; ++i) {
    PathId p = PathId::of({static_cast<AsNumber>(rng.uniform_int(5) + 1),
                           static_cast<AsNumber>(rng.uniform_int(20) + 10),
                           static_cast<AsNumber>(i + 1000)});
    snaps.push_back(PathSnapshot{p, rng.uniform(), rng.uniform(1.0, 50.0)});
  }
  AggregationConfig cfg;
  cfg.s_max = pc.s_max;
  Aggregator agg(cfg);
  const AggregationPlan plan = agg.plan(snaps);

  // 1. Every input path mapped.
  for (const auto& s : snaps) {
    ASSERT_EQ(plan.mapping.count(s.path.key()), 1u);
  }
  for (const auto& s : snaps) {
    const auto& e = plan.mapping.at(s.path.key());
    // 2. The aggregate id is a prefix of the origin path.
    EXPECT_TRUE(s.path.has_prefix(e.aggregate));
    // 3. Weights positive, member counts sane.
    EXPECT_GT(e.share_weight, 0.0);
    EXPECT_GE(e.member_count, 1);
    // 4. Attack aggregates have exactly one share.
    if (e.is_attack && e.member_count > 1) {
      EXPECT_DOUBLE_EQ(e.share_weight, 1.0);
    }
  }
  // 5. Identifier count is consistent with the mapping.
  std::set<std::uint64_t> ids;
  for (const auto& [k, e] : plan.mapping) ids.insert(e.group_key());
  EXPECT_EQ(plan.identifier_count, static_cast<int>(ids.size()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AggregationSweep,
    ::testing::Values(PlanCase{5, 3, 1}, PlanCase{30, 10, 2},
                      PlanCase{30, 40, 3}, PlanCase{100, 20, 4},
                      PlanCase{100, 5, 5}, PlanCase{200, 50, 6},
                      PlanCase{50, 1, 7}, PlanCase{2, 1, 8}));

}  // namespace
}  // namespace floc
