// RunManifest: every bench writes a "<bench>.manifest.json" provenance file;
// this pins that the JSON it emits is actually well-formed (util/json parses
// it) and carries the fields a results-directory audit needs — bench name,
// git revision, seed, config map, per-run records, artifact list — including
// through escaping-hostile labels.
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "bench/bench_common.h"
#include "util/json.h"

namespace floc::bench {
namespace {

TEST(RunManifest, JsonParsesWithAllProvenanceFields) {
  BenchArgs a;
  a.seed = 77;
  a.scale = 0.25;
  a.jobs = 3;
  RunManifest m("figXX", a);
  m.note("attack", "cbr");
  m.note("rate_mbps", 2.5);
  m.add_run("case one", 1234, 0.5);
  m.add_run("case \"two\"\\slash", 5678, 1.25);
  m.add_artifact("figXX.csv");
  m.add_artifact("figXX.trace.json");

  json::Value root;
  std::string err;
  ASSERT_TRUE(json::parse(m.json(), &root, &err)) << err << "\n" << m.json();
  ASSERT_TRUE(root.is_object());

  EXPECT_EQ(root.string_or("bench", ""), "figXX");
  EXPECT_FALSE(root.string_or("git", "").empty());
  EXPECT_DOUBLE_EQ(root.number_or("seed", -1.0), 77.0);
  EXPECT_GE(root.number_or("start_unix", -1.0), 0.0);
  EXPECT_GE(root.number_or("wall_seconds", -1.0), 0.0);

  const json::Value* config = root.get("config");
  ASSERT_NE(config, nullptr);
  ASSERT_TRUE(config->is_object());
  EXPECT_EQ(config->string_or("attack", ""), "cbr");
  EXPECT_EQ(config->string_or("rate_mbps", ""), "2.5");
  EXPECT_EQ(config->string_or("scale", ""), "0.25");
  EXPECT_EQ(config->string_or("jobs", ""), "3");

  const json::Value* runs = root.get("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_TRUE(runs->is_array());
  ASSERT_EQ(runs->items.size(), 2u);
  EXPECT_EQ(runs->items[0].string_or("label", ""), "case one");
  EXPECT_DOUBLE_EQ(runs->items[0].number_or("seed", -1.0), 1234.0);
  EXPECT_DOUBLE_EQ(runs->items[0].number_or("wall_s", -1.0), 0.5);
  // The quote/backslash label survives escaping and parses back verbatim.
  EXPECT_EQ(runs->items[1].string_or("label", ""), "case \"two\"\\slash");

  const json::Value* artifacts = root.get("artifacts");
  ASSERT_NE(artifacts, nullptr);
  ASSERT_TRUE(artifacts->is_array());
  ASSERT_EQ(artifacts->items.size(), 2u);
  EXPECT_EQ(artifacts->items[0].str, "figXX.csv");
}

TEST(RunManifest, WriteEmitsParseableFile) {
  BenchArgs a;
  RunManifest m("manifest_test_bench", a);
  m.add_run("only", 1, 0.0);
  const std::string path = m.write();
  EXPECT_EQ(path, "manifest_test_bench.manifest.json");

  std::string text, err;
  ASSERT_TRUE(telemetry::read_text_file(path, &text, &err)) << err;
  json::Value root;
  EXPECT_TRUE(json::parse(text, &root, &err)) << err;
  EXPECT_EQ(root.string_or("bench", ""), "manifest_test_bench");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace floc::bench
