// Property sweep over ScalableDropFilter configurations: estimation
// monotonicity and bounds must hold for any (arrays, bits, cadence).
#include <gtest/gtest.h>

#include "core/drop_filter.h"

namespace floc {
namespace {

struct FilterCase {
  int arrays;
  int bits;
  double epoch;
  int rate_multiple;  // drops per epoch of the "hot" flow
};

class DropFilterSweep : public ::testing::TestWithParam<FilterCase> {};

TEST_P(DropFilterSweep, HotFlowOutranksConformantFlow) {
  const FilterCase fc = GetParam();
  DropFilterConfig cfg;
  cfg.arrays = fc.arrays;
  cfg.bits = fc.bits;
  cfg.drop_bits = 12;
  ScalableDropFilter f(cfg);

  // Conformant flow: one drop per epoch. Hot flow: rate_multiple per epoch.
  const int epochs = 12;
  for (int e = 0; e < epochs; ++e) {
    const double t0 = (e + 1) * fc.epoch;
    f.record_drop(1, t0, fc.epoch);
    for (int d = 0; d < fc.rate_multiple; ++d) {
      f.record_drop(2, t0 + d * fc.epoch / (fc.rate_multiple + 1), fc.epoch);
    }
  }
  const double now = (epochs + 1.5) * fc.epoch;  // strictly after all records
  const double p_cold = f.preferential_drop_prob(1, now, fc.epoch);
  const double p_hot = f.preferential_drop_prob(2, now, fc.epoch);
  EXPECT_GE(p_hot, p_cold);
  EXPECT_GT(p_hot, 0.3);
  EXPECT_LT(p_cold, 0.4);
  // Over-rate estimates ordered and bounded below by 1.
  EXPECT_GE(f.over_rate(2, now, fc.epoch), f.over_rate(1, now, fc.epoch));
  EXPECT_GE(f.over_rate(1, now, fc.epoch), 1.0);
  // Probabilities are probabilities.
  EXPECT_GE(p_hot, 0.0);
  EXPECT_LT(p_hot, 1.0);
}

TEST_P(DropFilterSweep, SilenceDecaysEverything) {
  const FilterCase fc = GetParam();
  DropFilterConfig cfg;
  cfg.arrays = fc.arrays;
  cfg.bits = fc.bits;
  cfg.drop_bits = 8;
  ScalableDropFilter f(cfg);
  for (int d = 0; d < 40; ++d) f.record_drop(7, 1.0 + d * 0.001, fc.epoch);
  // After many quiet epochs the penalty disappears (legitimate flows'
  // history ages out of the filter, Section V-B.2).
  const double later = 1.0 + 400 * fc.epoch;
  EXPECT_DOUBLE_EQ(f.preferential_drop_prob(7, later, fc.epoch), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DropFilterSweep,
    ::testing::Values(FilterCase{2, 10, 0.1, 4}, FilterCase{4, 12, 0.1, 4},
                      FilterCase{4, 12, 0.5, 8}, FilterCase{6, 14, 0.05, 16},
                      FilterCase{4, 16, 1.0, 3}, FilterCase{3, 12, 0.25, 32}));

}  // namespace
}  // namespace floc
