#include "core/conformance.h"

#include <gtest/gtest.h>

#include "core/flow_table.h"

namespace floc {
namespace {

TEST(Conformance, AttackMtdClassifier) {
  EXPECT_TRUE(is_attack_mtd(0.1, 1.0, 0.5));
  EXPECT_FALSE(is_attack_mtd(0.6, 1.0, 0.5));
  EXPECT_FALSE(is_attack_mtd(1.5, 1.0, 0.5));  // better than reference
}

TEST(Conformance, LegitimateFraction) {
  EXPECT_DOUBLE_EQ(legitimate_fraction(0, 10), 1.0);
  EXPECT_DOUBLE_EQ(legitimate_fraction(5, 10), 0.5);
  EXPECT_DOUBLE_EQ(legitimate_fraction(10, 10), 0.0);
  EXPECT_DOUBLE_EQ(legitimate_fraction(0, 0), 1.0);   // empty path conformant
  EXPECT_DOUBLE_EQ(legitimate_fraction(15, 10), 0.0);  // clamped
}

TEST(OriginPathState, ConformanceEwmaEqIV6) {
  OriginPathState st(PathId::of({1, 2}), /*beta=*/0.2);
  EXPECT_DOUBLE_EQ(st.conformance(), 1.0);  // starts fully conformant
  st.update_conformance(0.0);
  EXPECT_DOUBLE_EQ(st.conformance(), 0.2 * 0.0 + 0.8 * 1.0);
  st.update_conformance(0.0);
  EXPECT_NEAR(st.conformance(), 0.64, 1e-12);
}

TEST(OriginPathState, FlowLifecycle) {
  OriginPathState st(PathId::of({1}), 0.2);
  st.touch_flow(100, 1.0);
  st.touch_flow(200, 1.5);
  st.touch_flow(100, 2.0);  // refresh
  EXPECT_EQ(st.flow_count(), 2u);
  EXPECT_NE(st.find_flow(100), nullptr);
  EXPECT_EQ(st.find_flow(300), nullptr);

  // Expire with timeout 1.0 at t=2.7: flow 200 (last 1.5) goes.
  st.expire_flows(2.7, 1.0);
  EXPECT_EQ(st.flow_count(), 1u);
  EXPECT_NE(st.find_flow(100), nullptr);
  EXPECT_EQ(st.find_flow(200), nullptr);
}

TEST(OriginPathState, RttAveraging) {
  OriginPathState st(PathId::of({1}), 0.2);
  EXPECT_FALSE(st.has_rtt());
  EXPECT_DOUBLE_EQ(st.mean_rtt(0.123), 0.123);  // fallback
  st.add_rtt_sample(0.1);
  EXPECT_TRUE(st.has_rtt());
  EXPECT_DOUBLE_EQ(st.mean_rtt(0.5), 0.1);
  st.add_rtt_sample(0.2);
  EXPECT_GT(st.mean_rtt(0.5), 0.1);
  EXPECT_LT(st.mean_rtt(0.5), 0.2);
}

TEST(OriginPathState, FirstSeenPreserved) {
  OriginPathState st(PathId::of({1}), 0.2);
  auto& fr = st.touch_flow(1, 5.0);
  EXPECT_DOUBLE_EQ(fr.first_seen, 5.0);
  auto& fr2 = st.touch_flow(1, 9.0);
  EXPECT_DOUBLE_EQ(fr2.first_seen, 5.0);
  EXPECT_DOUBLE_EQ(fr2.last_seen, 9.0);
}

}  // namespace
}  // namespace floc
