// Queue-mode transitions (Section V-A): uncongested -> congested ->
// flooding and back, with the documented policies active in each mode.
#include <gtest/gtest.h>

#include "core/floc_queue.h"

namespace floc {
namespace {

FlocConfig cfg_with_buffer(std::size_t buffer) {
  FlocConfig cfg;
  cfg.link_bandwidth = mbps(10);
  cfg.buffer_packets = buffer;
  cfg.control_interval = 0.05;
  cfg.enable_aggregation = false;
  return cfg;
}

Packet data(FlowId flow, const PathId& path) {
  Packet p;
  p.flow = flow;
  p.src = static_cast<HostAddr>(flow);
  p.dst = 99;
  p.path = path;
  return p;
}

TEST(FlocModes, ProgressesThroughModesAsQueueGrows) {
  FlocQueue q(cfg_with_buffer(100));  // Qmin = 20
  const PathId path = PathId::of({1});
  EXPECT_EQ(q.mode(), FlocQueue::Mode::kUncongested);
  // Fill past Qmin: congested.
  int i = 0;
  while (q.packet_count() <= q.q_min() && i < 1000) {
    q.enqueue(data(1, path), 0.0001 * i++);
  }
  EXPECT_EQ(q.mode(), FlocQueue::Mode::kCongested);
  // Keep pushing: either flooding is reached or drops hold the queue at/below
  // Q_max — both consistent with Section V-A; the mode never reports
  // kFlooding while Q <= Q_max.
  for (; i < 5000; ++i) q.enqueue(data(1, path), 0.0001 * i);
  if (q.packet_count() > q.q_max()) {
    EXPECT_EQ(q.mode(), FlocQueue::Mode::kFlooding);
  } else {
    EXPECT_NE(q.mode(), FlocQueue::Mode::kFlooding);
  }
  // Drain below Qmin: uncongested again.
  while (q.packet_count() > 0) q.dequeue(1.0);
  EXPECT_EQ(q.mode(), FlocQueue::Mode::kUncongested);
}

TEST(FlocModes, QmaxTracksFlowsAndWindows) {
  FlocQueue q(cfg_with_buffer(1000));
  const PathId a = PathId::of({1});
  const PathId b = PathId::of({2});
  q.enqueue(data(1, a), 0.0);
  q.run_control(0.1);
  const std::size_t qmax_one = q.q_max();
  // More flows on more paths -> larger sqrt(n)*W headroom.
  for (FlowId f = 2; f <= 20; ++f) {
    q.enqueue(data(f, f % 2 ? a : b), 0.11);
  }
  q.run_control(0.2);
  EXPECT_GE(q.q_max(), qmax_one);
  EXPECT_LE(q.q_max(), 1000u);  // never beyond the physical buffer
}

TEST(FlocModes, FloodingModeUsesStrictTokens) {
  FlocConfig cfg = cfg_with_buffer(60);
  FlocQueue q(cfg);
  const PathId path = PathId::of({3});
  // Blast without any service: once past Q_max, token misses become strict
  // kToken drops even before the path is attack-flagged.
  for (int i = 0; i < 4000; ++i) {
    q.enqueue(data(1, path), 0.0002 * i);
  }
  EXPECT_GT(q.drops_by_reason(DropReason::kToken) +
                q.drops_by_reason(DropReason::kQueueFull),
            0u);
  EXPECT_LE(q.packet_count(), 60u);
}

TEST(FlocModes, UncongestedConsumesNoDropBudget) {
  FlocQueue q(cfg_with_buffer(200));  // Qmin = 40
  const PathId path = PathId::of({4});
  // Light trickle with service keeping the queue at ~1: zero drops ever.
  for (int i = 0; i < 2000; ++i) {
    q.enqueue(data(1, path), 0.001 * i);
    q.dequeue(0.001 * i);
  }
  EXPECT_EQ(q.drops(), 0u);
}

}  // namespace
}  // namespace floc
