#include "faultsim/sim_monitor.h"

#include <gtest/gtest.h>

#include "core/floc_queue.h"
#include "telemetry/event_journal.h"

namespace floc {
namespace {

TEST(SimMonitor, FailingCheckRecordedWithTimeAndDetail) {
  Simulator sim;
  SimMonitor mon;
  mon.set_report_stream(nullptr);  // keep the log, silence stderr
  mon.add_check("always-bad", [](TimeSec, std::string* detail) {
    *detail = "token count went negative";
    return false;
  });
  mon.attach(&sim, /*period=*/0.25, /*until=*/1.0);
  sim.run();

  // One run at attach time plus the periodic ticks.
  ASSERT_GE(mon.violations().size(), 3u);
  EXPECT_EQ(mon.checks_run(), mon.violations().size());
  EXPECT_DOUBLE_EQ(mon.violations().front().time, 0.0);
  EXPECT_EQ(mon.violations().front().check, "always-bad");
  EXPECT_EQ(mon.violations().front().detail, "token count went negative");
  EXPECT_GT(mon.violations().back().time, 0.0);
  EXPECT_LE(mon.violations().back().time, 1.0);
}

TEST(SimMonitor, PassingChecksLeaveNoViolations) {
  Simulator sim;
  SimMonitor mon;
  int runs = 0;
  mon.add_check("ok", [&runs](TimeSec, std::string*) {
    ++runs;
    return true;
  });
  mon.attach(&sim, 0.1, 0.5);
  sim.run();
  EXPECT_TRUE(mon.violations().empty());
  EXPECT_GT(runs, 1);
  EXPECT_EQ(mon.checks_run(), static_cast<std::uint64_t>(runs));
}

TEST(SimMonitor, RunChecksUsableStandalone) {
  SimMonitor mon;
  mon.set_report_stream(nullptr);
  mon.add_check("bad-at-two", [](TimeSec now, std::string*) {
    return now < 2.0;
  });
  mon.run_checks(1.0);
  EXPECT_TRUE(mon.violations().empty());
  mon.run_checks(2.5);
  ASSERT_EQ(mon.violations().size(), 1u);
  EXPECT_DOUBLE_EQ(mon.violations()[0].time, 2.5);
  // A check that fails without setting detail still records the violation.
  EXPECT_TRUE(mon.violations()[0].detail.empty());
}

// A FLoc queue under sustained mixed load (including drops and control
// passes) must audit clean: byte accounting, token bounds, conservation.
TEST(SimMonitor, FlocQueueAuditCleanUnderLoad) {
  FlocConfig cfg;
  cfg.link_bandwidth = mbps(10);
  cfg.buffer_packets = 60;
  cfg.control_interval = 0.05;
  cfg.default_rtt = 0.05;
  FlocQueue q(cfg);
  SimMonitor mon;
  mon.watch_queue("floc", &q);

  const PathId good = PathId::of({1, 10});
  const PathId bad = PathId::of({2, 20});
  const double dt = 1.0 / 2500.0;
  double next_service = 0.0;
  for (int i = 0; i < 7500; ++i) {  // 3 seconds, attack at 3x the link
    const double t = i * dt;
    Packet a;
    a.flow = 100;
    a.src = 2;
    a.dst = 99;
    a.path = bad;
    a.type = PacketType::kData;
    q.enqueue(std::move(a), t);
    if (i % 15 == 0) {
      Packet g;
      g.flow = 1;
      g.src = 1;
      g.dst = 99;
      g.path = good;
      g.type = PacketType::kData;
      q.enqueue(std::move(g), t);
    }
    while (next_service <= t) {
      q.dequeue(next_service);
      next_service += 1.0 / 833.0;
    }
    if (i % 250 == 0) mon.run_checks(t);
  }
  EXPECT_GT(q.drops(), 0u);
  EXPECT_GT(mon.checks_run(), 0u);
  EXPECT_TRUE(mon.violations().empty());
}

TEST(SimMonitor, ViolationsLandInEventJournal) {
  SimMonitor mon;
  mon.set_report_stream(nullptr);
  telemetry::EventJournal journal;
  mon.set_journal(&journal);
  mon.add_check("byte-ledger", [](TimeSec, std::string* detail) {
    *detail = "bytes out of balance";
    return false;
  });
  mon.add_check("ok", [](TimeSec, std::string*) { return true; });
  mon.run_checks(1.5);

  const auto events =
      journal.of_kind(telemetry::EventKind::kInvariantViolation);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0]->time, 1.5);
  EXPECT_EQ(events[0]->component, "byte-ledger");
  EXPECT_EQ(events[0]->detail, "bytes out of balance");
  // Detach: later violations still recorded by the monitor, not journaled.
  mon.set_journal(nullptr);
  mon.run_checks(2.0);
  EXPECT_EQ(journal.count(telemetry::EventKind::kInvariantViolation), 1u);
  EXPECT_EQ(mon.violations().size(), 2u);
}

}  // namespace
}  // namespace floc
