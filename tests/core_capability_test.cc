#include "core/capability.h"

#include <gtest/gtest.h>

#include <set>

namespace floc {
namespace {

Packet data_packet(HostAddr src, HostAddr dst, PathId path) {
  Packet p;
  p.flow = 42;
  p.src = src;
  p.dst = dst;
  p.path = path;
  return p;
}

TEST(Capability, IssueVerifyRoundTrip) {
  CapabilityIssuer issuer(0x5EC, 0);
  Packet p = data_packet(1, 2, PathId::of({3, 4}));
  const auto caps = issuer.issue(p.src, p.dst, p.path);
  p.cap0 = caps.cap0;
  p.cap1 = caps.cap1;
  EXPECT_TRUE(issuer.verify(p));
}

TEST(Capability, ForgedCapabilityRejected) {
  CapabilityIssuer issuer(0x5EC, 0);
  Packet p = data_packet(1, 2, PathId::of({3, 4}));
  const auto caps = issuer.issue(p.src, p.dst, p.path);
  p.cap0 = caps.cap0 ^ 1;
  p.cap1 = caps.cap1;
  EXPECT_FALSE(issuer.verify(p));
}

TEST(Capability, BoundToSourceDestinationAndPath) {
  CapabilityIssuer issuer(0x5EC, 0);
  const PathId path = PathId::of({3, 4});
  const auto caps = issuer.issue(1, 2, path);

  Packet other_src = data_packet(9, 2, path);
  other_src.cap0 = caps.cap0;
  other_src.cap1 = caps.cap1;
  EXPECT_FALSE(issuer.verify(other_src));

  Packet other_dst = data_packet(1, 9, path);
  other_dst.cap0 = caps.cap0;
  other_dst.cap1 = caps.cap1;
  EXPECT_FALSE(issuer.verify(other_dst));

  Packet other_path = data_packet(1, 2, PathId::of({3, 5}));
  other_path.cap0 = caps.cap0;
  other_path.cap1 = caps.cap1;
  EXPECT_FALSE(issuer.verify(other_path));
}

TEST(Capability, DifferentSecretsDiffer) {
  CapabilityIssuer a(111, 0), b(222, 0);
  const auto ca = a.issue(1, 2, PathId::of({3}));
  const auto cb = b.issue(1, 2, PathId::of({3}));
  EXPECT_NE(ca.cap0, cb.cap0);
}

TEST(Capability, SlotsInRange) {
  CapabilityIssuer issuer(0x5EC, 4);
  for (HostAddr d = 1; d < 100; ++d) {
    const int s = issuer.slot_of(d);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 4);
  }
}

TEST(Capability, SlotsRoughlyUniform) {
  CapabilityIssuer issuer(0x5EC, 4);
  int counts[4] = {};
  for (HostAddr d = 1; d <= 4000; ++d) counts[issuer.slot_of(d)]++;
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(Capability, AccountingKeyCollapsesHighFanout) {
  // With n_max slots, a source's flows to many destinations share at most
  // n_max accounting keys (Section IV-B.3).
  const int n_max = 2;
  CapabilityIssuer issuer(0x5EC, n_max);
  std::set<std::uint64_t> keys;
  for (HostAddr d = 1; d <= 20; ++d) {
    Packet p = data_packet(7, d, PathId::of({3}));
    p.flow = 1000 + d;  // all distinct transport flows
    keys.insert(issuer.accounting_key(p));
  }
  EXPECT_LE(keys.size(), static_cast<std::size_t>(n_max));
}

TEST(Capability, AccountingKeyDistinctAcrossSources) {
  CapabilityIssuer issuer(0x5EC, 2);
  Packet a = data_packet(1, 5, PathId::of({3}));
  Packet b = data_packet(2, 5, PathId::of({3}));
  EXPECT_NE(issuer.accounting_key(a), issuer.accounting_key(b));
}

TEST(Capability, NoSlotsUsesFlowId) {
  CapabilityIssuer issuer(0x5EC, 0);
  Packet p = data_packet(1, 2, PathId::of({3}));
  p.flow = 777;
  EXPECT_EQ(issuer.accounting_key(p), 777u);
}

TEST(Capability, ZeroReservedAsNoCapability) {
  // Issued capabilities never collide with the "no capability" marker 0.
  CapabilityIssuer issuer(0x5EC, 2);
  for (HostAddr s = 1; s < 200; ++s) {
    const auto caps = issuer.issue(s, s + 1, PathId::of({s % 7 + 1}));
    EXPECT_NE(caps.cap0, 0u);
    EXPECT_NE(caps.cap1, 0u);
  }
}

}  // namespace
}  // namespace floc
