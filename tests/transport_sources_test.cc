#include <gtest/gtest.h>

#include "netsim/drop_tail.h"
#include "transport/cbr_source.h"
#include "transport/flow_monitor.h"
#include "transport/shrew_source.h"
#include "transport/tcp_sink.h"

namespace floc {
namespace {

struct World {
  Simulator sim;
  Network net{&sim};
  Host* client;
  Host* server;
  FlowMonitor monitor;
  std::unique_ptr<TcpSink> sink;

  World() {
    client = net.add_host("c", 1);
    Router* r = net.add_router("r", 2);
    server = net.add_host("s", 3);
    net.connect(client, r, mbps(100), 0.001);
    net.connect(r, server, mbps(100), 0.001);
    net.build_routes();
    sink = std::make_unique<TcpSink>(&sim, server, &monitor);
  }
};

TEST(CbrSource, SendsAtConfiguredRate) {
  World w;
  CbrConfig cfg;
  cfg.flow = 1;
  cfg.dst = w.server->addr();
  cfg.rate = mbps(2);
  CbrSource src(&w.sim, w.client, cfg);
  w.monitor.register_flow(1, {});
  src.start_at(0.0);
  w.sim.schedule_at(1.0, [&] { w.monitor.snapshot("a", w.sim.now()); });
  w.sim.schedule_at(11.0, [&] { w.monitor.snapshot("b", w.sim.now()); });
  w.sim.run_until(11.0);
  EXPECT_NEAR(w.monitor.flow_bps(1, "a", "b"), mbps(2), 0.05 * mbps(2));
}

TEST(CbrSource, HandshakesBeforeSending) {
  World w;
  CbrConfig cfg;
  cfg.flow = 1;
  cfg.dst = w.server->addr();
  cfg.rate = mbps(1);
  cfg.do_handshake = true;
  CbrSource src(&w.sim, w.client, cfg);
  src.start_at(0.0);
  w.sim.run_until(0.003);  // not enough time for SYN-ACK round trip
  EXPECT_EQ(src.packets_sent(), 0u);
  w.sim.run_until(1.0);
  EXPECT_GT(src.packets_sent(), 0u);
}

TEST(CbrSource, NoHandshakeStartsImmediately) {
  World w;
  CbrConfig cfg;
  cfg.flow = 1;
  cfg.dst = w.server->addr();
  cfg.rate = mbps(1);
  cfg.do_handshake = false;
  CbrSource src(&w.sim, w.client, cfg);
  src.start_at(0.0);
  w.sim.run_until(0.1);
  EXPECT_GT(src.packets_sent(), 0u);
}

TEST(CbrSource, StopHalts) {
  World w;
  CbrConfig cfg;
  cfg.flow = 1;
  cfg.dst = w.server->addr();
  cfg.rate = mbps(10);
  cfg.do_handshake = false;
  CbrSource src(&w.sim, w.client, cfg);
  src.start_at(0.0);
  src.stop_at(1.0);
  w.sim.run_until(5.0);
  const auto at_stop = src.packets_sent();
  w.sim.run_until(10.0);
  EXPECT_EQ(src.packets_sent(), at_stop);
}

TEST(ShrewSource, MeanRateMatchesDutyCycle) {
  World w;
  ShrewConfig cfg;
  cfg.cbr.flow = 1;
  cfg.cbr.dst = w.server->addr();
  cfg.cbr.rate = mbps(4);     // peak
  cfg.burst_len = 0.02;
  cfg.period = 0.08;          // duty 25% -> mean 1 Mbps
  ShrewSource src(&w.sim, w.client, cfg);
  w.monitor.register_flow(1, {});
  src.start_at(0.0);
  w.sim.schedule_at(1.0, [&] { w.monitor.snapshot("a", w.sim.now()); });
  w.sim.schedule_at(11.0, [&] { w.monitor.snapshot("b", w.sim.now()); });
  w.sim.run_until(11.0);
  EXPECT_NEAR(w.monitor.flow_bps(1, "a", "b"), mbps(1), 0.15 * mbps(1));
}

TEST(ShrewSource, GateIsPeriodic) {
  World w;
  ShrewConfig cfg;
  cfg.cbr.flow = 1;
  cfg.cbr.dst = w.server->addr();
  cfg.cbr.rate = mbps(1);
  cfg.burst_len = 0.25;
  cfg.period = 1.0;
  cfg.phase = 0.0;
  ShrewSource src(&w.sim, w.client, cfg);
  EXPECT_TRUE(src.gate_open(0.1));
  EXPECT_FALSE(src.gate_open(0.5));
  EXPECT_TRUE(src.gate_open(1.1));
  EXPECT_FALSE(src.gate_open(1.9));
}

// Shrew burst phase alignment across coordinated sources.
TEST(ShrewSource, PhaseShiftsGate) {
  World w;
  ShrewConfig cfg;
  cfg.cbr.flow = 1;
  cfg.cbr.dst = w.server->addr();
  cfg.cbr.rate = mbps(1);
  cfg.burst_len = 0.25;
  cfg.period = 1.0;
  cfg.phase = 0.5;
  ShrewSource src(&w.sim, w.client, cfg);
  EXPECT_FALSE(src.gate_open(0.1));
  EXPECT_TRUE(src.gate_open(0.6));
}

}  // namespace
}  // namespace floc
