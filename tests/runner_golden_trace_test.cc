// Golden-trace determinism test (ISSUE 5, satellite 1).
//
// Runs a shrunk fig06 attack-confinement sweep (three attack cases, FLoc on
// the Fig. 5 tree) through the ScenarioRunner and hashes every derived
// artifact per run: the defense-event journal dump and the causal-span CSV.
// The parallel sweep (--jobs 8) must be byte-identical to the serial golden
// baseline (--jobs 1), and repeating the parallel sweep with the same master
// seed must reproduce the same hashes — i.e. no simulated byte depends on
// thread scheduling.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "runner/scenario_runner.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_export.h"
#include "telemetry/tracing.h"
#include "topology/tree_scenario.h"
#include "util/seed.h"
#include "util/siphash.h"

namespace floc {
namespace {

constexpr std::uint64_t kMaster = 42;
constexpr SipKey kHashKey{0x464C6F6347544431ULL, 0x474F4C44454E5452ULL};

std::uint64_t hash_bytes(const std::string& s) {
  return siphash24(kHashKey,
                   std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(s.data()),
                       s.size()));
}

struct CaseHashes {
  std::uint64_t seed = 0;
  std::uint64_t journal_hash = 0;  // EventJournal::dump()
  std::uint64_t spans_hash = 0;    // telemetry::spans_csv()
  std::uint64_t journal_events = 0;
  std::uint64_t spans = 0;
};

// A shrunk fig06 case: one fully isolated world per run — own Simulator +
// Rng (seeded from the derived per-run seed), own Telemetry and Tracer.
CaseHashes run_case(AttackType attack, std::uint64_t seed,
                    SimEngine engine = Simulator::default_engine()) {
  TreeScenarioConfig cfg;
  cfg.scale = 0.05;
  cfg.duration = 12.0;
  cfg.measure_start = 6.0;
  cfg.measure_end = 12.0;
  cfg.scheme = DefenseScheme::kFloc;
  cfg.attack = attack;
  cfg.attack_rate = mbps(2.0);
  cfg.seed = seed;
  cfg.engine = engine;
  if (attack == AttackType::kShrew) {
    cfg.shrew_period = 0.05;
    cfg.shrew_duty = 0.25;
  }
  TreeScenario s(cfg);

  telemetry::Telemetry tel;
  s.floc_queue()->attach_telemetry(&tel);
  telemetry::Tracer tracer(std::size_t{1} << 12);
  s.attach_tracer(&tracer);

  s.run();

  CaseHashes h;
  h.seed = seed;
  const std::string journal = tel.journal.dump();
  const std::string spans = telemetry::spans_csv(tracer);
  h.journal_hash = hash_bytes(journal);
  h.spans_hash = hash_bytes(spans);
  h.journal_events = tel.journal.total();
  h.spans = tracer.spans().size();
  return h;
}

std::vector<CaseHashes> sweep(int jobs,
                              SimEngine engine = Simulator::default_engine()) {
  const AttackType attacks[] = {AttackType::kTcpPopulation, AttackType::kCbr,
                                AttackType::kShrew};
  return runner::run_indexed<CaseHashes>(jobs, 3, [&](std::size_t i) {
    return run_case(attacks[i],
                    derive_seed(kMaster, i, kSeedStreamTreeScenario), engine);
  });
}

TEST(GoldenTrace, ParallelSweepMatchesSerialByteForByte) {
  const auto serial = sweep(1);    // the golden baseline: literally serial
  const auto parallel = sweep(8);  // same sweep on a contended 8-wide pool
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].seed, parallel[i].seed) << "case " << i;
    EXPECT_EQ(serial[i].journal_hash, parallel[i].journal_hash)
        << "case " << i << ": event journal diverged across --jobs";
    EXPECT_EQ(serial[i].spans_hash, parallel[i].spans_hash)
        << "case " << i << ": span trace diverged across --jobs";
    EXPECT_EQ(serial[i].journal_events, parallel[i].journal_events);
    EXPECT_EQ(serial[i].spans, parallel[i].spans);
  }
  // The shrunk scenario still exercises the full defense + tracing stack.
  for (const auto& h : serial) {
    EXPECT_GT(h.journal_events, 0u);
    EXPECT_GT(h.spans, 0u);
  }
}

TEST(GoldenTrace, RepeatedParallelSweepsReproduce) {
  const auto first = sweep(8);
  const auto second = sweep(8);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].journal_hash, second[i].journal_hash) << "case " << i;
    EXPECT_EQ(first[i].spans_hash, second[i].spans_hash) << "case " << i;
  }
}

// The engine-swap identity (ISSUE 10, satellite 2): the timer-wheel engine
// must reproduce the heap engine's derived artifacts byte for byte — same
// journal bytes, same span CSV — serially and on a contended 8-wide pool.
// This is what licenses shipping the wheel as the default: every golden
// baseline recorded under the heap engine stays valid.
TEST(GoldenTrace, WheelEngineMatchesHeapByteForByte) {
  for (const int jobs : {1, 8}) {
    const auto heap = sweep(jobs, SimEngine::kHeap);
    const auto wheel = sweep(jobs, SimEngine::kWheel);
    ASSERT_EQ(heap.size(), wheel.size());
    for (std::size_t i = 0; i < heap.size(); ++i) {
      EXPECT_EQ(heap[i].seed, wheel[i].seed) << "case " << i;
      EXPECT_EQ(heap[i].journal_hash, wheel[i].journal_hash)
          << "case " << i << " (--jobs " << jobs
          << "): event journal diverged across engines";
      EXPECT_EQ(heap[i].spans_hash, wheel[i].spans_hash)
          << "case " << i << " (--jobs " << jobs
          << "): span trace diverged across engines";
      EXPECT_EQ(heap[i].journal_events, wheel[i].journal_events);
      EXPECT_EQ(heap[i].spans, wheel[i].spans);
      EXPECT_GT(heap[i].journal_events, 0u);
    }
  }
}

// Distinct derived case seeds must actually produce distinct worlds — a
// regression guard against the hash comparisons passing vacuously because
// every case collapsed onto one seed.
TEST(GoldenTrace, CasesAreDistinctWorlds) {
  const auto runs = sweep(1);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    for (std::size_t j = i + 1; j < runs.size(); ++j) {
      EXPECT_NE(runs[i].seed, runs[j].seed);
      EXPECT_NE(runs[i].journal_hash, runs[j].journal_hash);
    }
  }
}

}  // namespace
}  // namespace floc
