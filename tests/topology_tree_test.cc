#include "topology/tree_scenario.h"

#include <gtest/gtest.h>

namespace floc {
namespace {

TreeScenarioConfig tiny() {
  TreeScenarioConfig cfg;
  cfg.tree_degree = 2;
  cfg.tree_height = 2;   // 4 leaves
  cfg.legit_per_leaf = 2;
  cfg.attack_leaf_count = 1;
  cfg.attack_per_leaf = 3;
  cfg.target_link = mbps(5);
  cfg.internal_link = mbps(20);
  cfg.duration = 10.0;
  cfg.measure_start = 2.0;
  cfg.measure_end = 10.0;
  cfg.attack_start = 1.0;
  cfg.attack_rate = mbps(1);
  return cfg;
}

TEST(TreeScenario, TopologyShapeMatchesConfig) {
  TreeScenario s(tiny());
  EXPECT_EQ(s.leaf_count(), 4);
  int attack_leaves = 0;
  for (int i = 0; i < 4; ++i) attack_leaves += s.leaf_is_attack(i);
  EXPECT_EQ(attack_leaves, 1);
  // Path identifiers: depth 2, distinct origins.
  EXPECT_EQ(s.leaf_path(0).length(), 2);
  EXPECT_NE(s.leaf_path(0).key(), s.leaf_path(1).key());
}

TEST(TreeScenario, PathsShareTopLevelPrefix) {
  TreeScenario s(tiny());
  // Leaves 0,1 descend from the first depth-1 router; 2,3 from the second.
  EXPECT_EQ(s.leaf_path(0).at(0), s.leaf_path(1).at(0));
  EXPECT_EQ(s.leaf_path(2).at(0), s.leaf_path(3).at(0));
  EXPECT_NE(s.leaf_path(0).at(0), s.leaf_path(2).at(0));
}

TEST(TreeScenario, RegistersAllFlows) {
  TreeScenarioConfig cfg = tiny();
  TreeScenario s(cfg);
  // 4 leaves * 2 legit + 1 attack leaf * 3 bots = 11 flows.
  EXPECT_EQ(s.monitor().flow_count(), 11u);
  EXPECT_EQ(s.legit_flow_total(), 8);
}

TEST(TreeScenario, CovertCreatesMultipleFlowsPerSource) {
  TreeScenarioConfig cfg = tiny();
  cfg.attack = AttackType::kCovert;
  cfg.covert_connections = 4;
  TreeScenario s(cfg);
  // 8 legit + 3 bots * 4 connections = 20.
  EXPECT_EQ(s.monitor().flow_count(), 20u);
}

TEST(TreeScenario, RunsAndDeliversTraffic) {
  TreeScenario s(tiny());
  s.run();
  const auto cb = s.class_bandwidth();
  EXPECT_GT(cb.legit_legit_bps, 0.0);
  EXPECT_GT(cb.attack_bps, 0.0);
  // Total delivered cannot exceed the target link capacity.
  EXPECT_LE(cb.legit_legit_bps + cb.legit_attack_bps + cb.attack_bps,
            1.05 * s.scaled_target_bw());
}

TEST(TreeScenario, LegitPerLeafOverride) {
  TreeScenarioConfig cfg = tiny();
  cfg.legit_per_leaf_override = {1, 3};
  TreeScenario s(cfg);
  // Leaves alternate 1,3,1,3 legit sources = 8 + 3 bots.
  EXPECT_EQ(s.monitor().flow_count(), 11u);
}

TEST(TreeScenario, ScaleShrinksPopulation) {
  TreeScenarioConfig cfg = tiny();
  cfg.scale = 0.5;
  TreeScenario s(cfg);
  // 2 legit/leaf -> 1; 3 bots -> 2 (rounded).
  EXPECT_EQ(s.monitor().flow_count(), 4u * 1u + 2u);
  EXPECT_DOUBLE_EQ(s.scaled_target_bw(), 0.5 * mbps(5));
}

TEST(TreeScenario, DefenseSchemeSelectsQueue) {
  for (DefenseScheme sch :
       {DefenseScheme::kDropTail, DefenseScheme::kRed, DefenseScheme::kRedPd,
        DefenseScheme::kPushback, DefenseScheme::kFloc}) {
    TreeScenarioConfig cfg = tiny();
    cfg.scheme = sch;
    cfg.duration = 3.0;
    cfg.measure_start = 1.0;
    cfg.measure_end = 3.0;
    TreeScenario s(cfg);
    s.run();
    EXPECT_GT(s.bottleneck_queue().admissions(), 0u) << to_string(sch);
  }
}

TEST(TreeScenario, FlocQueueAccessor) {
  TreeScenarioConfig cfg = tiny();
  cfg.scheme = DefenseScheme::kFloc;
  TreeScenario s(cfg);
  EXPECT_NE(s.floc_queue(), nullptr);
  TreeScenarioConfig cfg2 = tiny();
  cfg2.scheme = DefenseScheme::kRed;
  TreeScenario s2(cfg2);
  EXPECT_EQ(s2.floc_queue(), nullptr);
}

}  // namespace
}  // namespace floc
