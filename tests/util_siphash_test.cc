#include "util/siphash.h"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

namespace floc {
namespace {

// Reference vector from the SipHash paper (Appendix A): key 0x0F0E...00,
// message 00 01 02 ... 0E (15 bytes) -> 0xA129CA6149BE45E5.
TEST(SipHash, ReferenceVector) {
  SipKey key;
  std::uint8_t kbytes[16];
  for (int i = 0; i < 16; ++i) kbytes[i] = static_cast<std::uint8_t>(i);
  std::memcpy(&key.k0, kbytes, 8);
  std::memcpy(&key.k1, kbytes + 8, 8);
  std::vector<std::uint8_t> msg(15);
  for (int i = 0; i < 15; ++i) msg[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(siphash24(key, msg), 0xA129CA6149BE45E5ULL);
}

TEST(SipHash, EmptyMessageReference) {
  SipKey key;
  std::uint8_t kbytes[16];
  for (int i = 0; i < 16; ++i) kbytes[i] = static_cast<std::uint8_t>(i);
  std::memcpy(&key.k0, kbytes, 8);
  std::memcpy(&key.k1, kbytes + 8, 8);
  EXPECT_EQ(siphash24(key, {}), 0x726FDB47DD0E0E31ULL);
}

TEST(SipHash, KeyDependence) {
  const std::vector<std::uint8_t> msg{1, 2, 3, 4};
  EXPECT_NE(siphash24(SipKey{1, 2}, msg), siphash24(SipKey{1, 3}, msg));
  EXPECT_NE(siphash24(SipKey{1, 2}, msg), siphash24(SipKey{2, 2}, msg));
}

TEST(SipHash, MessageDependence) {
  SipKey k{42, 43};
  EXPECT_NE(siphash24_words(k, {1, 2, 3}), siphash24_words(k, {1, 2, 4}));
  EXPECT_NE(siphash24_words(k, {1, 2}), siphash24_words(k, {1, 2, 0}));
}

TEST(SipHash, WordsDeterministic) {
  SipKey k{7, 8};
  EXPECT_EQ(siphash24_words(k, {10, 20}), siphash24_words(k, {10, 20}));
}

TEST(SipHash, OutputLooksUniform) {
  // Crude avalanche check: flipping one input bit flips ~half the output bits.
  SipKey k{0xDEAD, 0xBEEF};
  int total = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const std::uint64_t a = siphash24_words(k, {0});
    const std::uint64_t b = siphash24_words(k, {std::uint64_t{1} << i});
    total += std::popcount(a ^ b);
  }
  const double avg = total / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

}  // namespace
}  // namespace floc
