#include "topology/skitter_gen.h"

#include <gtest/gtest.h>

namespace floc {
namespace {

TEST(SkitterGen, GeneratesRequestedSize) {
  SkitterConfig cfg;
  cfg.as_count = 500;
  const AsGraph g = generate_skitter_tree(cfg);
  EXPECT_EQ(g.size(), 500);
}

TEST(SkitterGen, TreeInvariants) {
  SkitterConfig cfg;
  cfg.as_count = 800;
  const AsGraph g = generate_skitter_tree(cfg);
  EXPECT_EQ(g.node(0).parent, -1);
  int edges = 0;
  for (int i = 1; i < g.size(); ++i) {
    const auto& n = g.node(i);
    EXPECT_GE(n.parent, 0);
    EXPECT_LT(n.parent, i);
    EXPECT_EQ(n.depth, g.node(n.parent).depth + 1);
    ++edges;
  }
  EXPECT_EQ(edges, g.size() - 1);
}

TEST(SkitterGen, Deterministic) {
  SkitterConfig cfg;
  cfg.as_count = 300;
  cfg.seed = 99;
  const AsGraph a = generate_skitter_tree(cfg);
  const AsGraph b = generate_skitter_tree(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.node(i).parent, b.node(i).parent);
  }
}

TEST(SkitterGen, PresetsDifferInShape) {
  SkitterConfig f, j;
  f.preset = SkitterPreset::kFRoot;
  j.preset = SkitterPreset::kJpn;
  f.as_count = j.as_count = 1500;
  const AsGraph gf = generate_skitter_tree(f);
  const AsGraph gj = generate_skitter_tree(j);
  // JPN preset is deeper on average (stringier paths).
  EXPECT_GT(gj.mean_depth(), gf.mean_depth());
}

TEST(SkitterGen, DepthCapRespected) {
  for (SkitterPreset p :
       {SkitterPreset::kFRoot, SkitterPreset::kHRoot, SkitterPreset::kJpn}) {
    SkitterConfig cfg;
    cfg.preset = p;
    cfg.as_count = 1000;
    const AsGraph g = generate_skitter_tree(cfg);
    EXPECT_LE(g.max_depth(), 10) << to_string(p);
    EXPECT_GE(g.mean_depth(), 1.0) << to_string(p);
  }
}

TEST(AsGraph, PathOfOrdering) {
  AsGraph g;
  g.add_as(1, -1, 1.0);       // root (id 0)
  g.add_as(10, 0, 1.0);       // id 1
  g.add_as(20, 1, 1.0);       // id 2
  g.add_as(30, 2, 1.0);       // id 3
  const PathId p = g.path_of(3);
  // Nearest-to-root first: {10, 20, 30}.
  EXPECT_EQ(p, PathId::of({10, 20, 30}));
  EXPECT_EQ(p.origin(), 30u);
  EXPECT_EQ(g.path_of(0).length(), 0);
}

TEST(AsGraph, ChainToRoot) {
  AsGraph g;
  g.add_as(1, -1, 1.0);
  g.add_as(2, 0, 1.0);
  g.add_as(3, 1, 1.0);
  EXPECT_EQ(g.chain_to_root(2), (std::vector<int>{2, 1, 0}));
}

TEST(SkitterGen, PopulationsPositiveAndSkewed) {
  SkitterConfig cfg;
  cfg.as_count = 1000;
  const AsGraph g = generate_skitter_tree(cfg);
  double max_pop = 0.0, total = 0.0;
  for (int i = 0; i < g.size(); ++i) {
    EXPECT_GT(g.node(i).population, 0.0);
    max_pop = std::max(max_pop, g.node(i).population);
    total += g.node(i).population;
  }
  // Zipf: the largest AS should hold a noticeable share of all hosts.
  EXPECT_GT(max_pop / total, 0.01);
}

}  // namespace
}  // namespace floc
