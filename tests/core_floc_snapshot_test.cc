// QueueDisc::snapshot_state: the FlocQueue dump names latched attack paths
// with their token-bucket levels, redacts the capability secret, bounds the
// per-origin flow listing, and every baseline emits a minimal parseable
// dump; TracedQueue delegates to the wrapped queue.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "baselines/drr_queue.h"
#include "baselines/priority_fair.h"
#include "baselines/pushback.h"
#include "baselines/rate_limiter.h"
#include "baselines/red_pd.h"
#include "baselines/red_queue.h"
#include "core/floc_queue.h"
#include "netsim/trace.h"
#include "util/json.h"

namespace floc {
namespace {

Packet data(FlowId flow, const PathId& path, HostAddr src = 1,
            HostAddr dst = 99) {
  Packet p;
  p.flow = flow;
  p.src = src;
  p.dst = dst;
  p.path = path;
  p.type = PacketType::kData;
  return p;
}

FlocConfig small_cfg() {
  FlocConfig cfg;
  cfg.link_bandwidth = mbps(10);
  cfg.buffer_packets = 60;
  cfg.control_interval = 0.05;
  cfg.default_rtt = 0.05;
  cfg.enable_aggregation = false;
  return cfg;
}

// Drives a FlocQueue with one over-rate path and one conformant path until
// the flood latches (the core_floc_queue_test idiom).
double drive_flood(FlocQueue& q, const PathId& good, const PathId& bad) {
  const double dt = 1.0 / 2500.0;
  double next_service = 0.0;
  double t = 0.0;
  for (int i = 0; i < 12500; ++i) {  // 5 seconds, attack at 3x the link
    t = i * dt;
    q.enqueue(data(100, bad, /*src=*/2), t);
    if (i % 15 == 0) q.enqueue(data(1, good, /*src=*/1), t);
    while (next_service <= t) {
      q.dequeue(next_service);
      next_service += 1.0 / 833.0;
    }
  }
  q.run_control(t + 0.01);
  return t;
}

std::string snapshot_of(const QueueDisc& q, TimeSec now) {
  json::JsonWriter w;
  q.snapshot_state(w, now);
  EXPECT_TRUE(w.ok());
  return w.str();
}

TEST(FlocSnapshot, NamesLatchedPathWithBucketLevels) {
  FlocQueue q(small_cfg());
  const PathId good = PathId::of({1, 10});
  const PathId bad = PathId::of({2, 20});
  const double t = drive_flood(q, good, bad);
  ASSERT_TRUE(q.is_attack_path(bad));

  const std::string text = snapshot_of(q, t);
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(text, &v, &err)) << err;
  EXPECT_EQ(v.string_or("scheme", ""), "floc");

  // The latched path appears by name in the aggregates array, flagged as
  // attack, with its token-bucket fill levels readable.
  const json::Value* aggs = v.get("aggregates");
  ASSERT_NE(aggs, nullptr);
  ASSERT_TRUE(aggs->is_array());
  const json::Value* latched = nullptr;
  for (const json::Value& a : aggs->items) {
    if (a.bool_or("attack", false)) {
      latched = &a;
      break;
    }
  }
  ASSERT_NE(latched, nullptr) << text;
  EXPECT_EQ(latched->string_or("path", ""), bad.to_string());
  const json::Value* bucket = latched->get("bucket");
  ASSERT_NE(bucket, nullptr);
  EXPECT_TRUE(bucket->bool_or("configured", false));
  const json::Value* tokens = bucket->get("tokens_base");
  ASSERT_NE(tokens, nullptr);
  EXPECT_TRUE(tokens->is_number());
  EXPECT_GT(bucket->number_or("capacity_base", 0.0), 0.0);

  // The conformant path shows up unflagged among the origins.
  const json::Value* origins = v.get("origins");
  ASSERT_NE(origins, nullptr);
  bool saw_good = false;
  for (const json::Value& o : origins->items) {
    if (o.string_or("path", "") == good.to_string()) saw_good = true;
  }
  EXPECT_TRUE(saw_good);

  // Mode machine and offense ledger are present.
  const json::Value* mode = v.get("mode");
  ASSERT_NE(mode, nullptr);
  EXPECT_FALSE(mode->string_or("name", "").empty());
  EXPECT_NE(v.get("offense"), nullptr);
  EXPECT_NE(v.get("state_budget"), nullptr);
}

TEST(FlocSnapshot, CapabilitySecretIsRedacted) {
  FlocConfig cfg = small_cfg();
  const std::string text = [&] {
    FlocQueue q(cfg);
    q.enqueue(data(1, PathId::of({1, 10})), 0.0);
    return snapshot_of(q, 0.1);
  }();
  EXPECT_NE(text.find("\"secret\":\"redacted\""), std::string::npos) << text;
  // Neither the decimal nor any obvious hex rendering of the provisioned
  // secret may appear anywhere in the dump.
  EXPECT_NE(cfg.secret, 0u);
  EXPECT_EQ(text.find(std::to_string(cfg.secret)), std::string::npos);
  EXPECT_EQ(text.find("F10C"), std::string::npos);
  EXPECT_EQ(text.find("f10c"), std::string::npos);
}

TEST(FlocSnapshot, PerOriginFlowDumpIsBoundedWithExplicitOmissionCount) {
  FlocConfig cfg = small_cfg();
  FlocQueue q(cfg);
  const PathId path = PathId::of({3, 30});
  for (int i = 0; i < 50; ++i) {  // 50 flows on one origin, bound is 32
    q.enqueue(data(static_cast<FlowId>(1000 + i), path), 0.001 * i);
    q.dequeue(0.001 * i);
  }
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(snapshot_of(q, 0.1), &v, &err)) << err;
  const json::Value* origins = v.get("origins");
  ASSERT_NE(origins, nullptr);
  ASSERT_EQ(origins->items.size(), 1u);
  const json::Value& o = origins->items[0];
  EXPECT_DOUBLE_EQ(o.number_or("flow_count", 0.0), 50.0);
  const json::Value* flows = o.get("flows");
  ASSERT_NE(flows, nullptr);
  EXPECT_EQ(flows->items.size(), 32u);
  EXPECT_DOUBLE_EQ(o.number_or("flows_omitted", 0.0), 18.0);
}

TEST(FlocSnapshot, SnapshotIsDeterministicAcrossIdenticalRuns) {
  auto run = [] {
    FlocQueue q(small_cfg());
    const PathId good = PathId::of({1, 10});
    const PathId bad = PathId::of({2, 20});
    const double t = drive_flood(q, good, bad);
    return snapshot_of(q, t);
  };
  EXPECT_EQ(run(), run());
}

// Every baseline dumps at least {scheme, packets, bytes, drops, admissions}
// plus its own state, and the result parses.
TEST(BaselineSnapshot, AllBaselinesEmitParseableDumps) {
  RedConfig red;
  red.buffer_packets = 100;
  red.link_bandwidth = mbps(10);
  RedQueue red_q(red);

  RedPdConfig red_pd;
  red_pd.red.buffer_packets = 60;
  RedPdQueue red_pd_q(red_pd);

  PushbackConfig pb;
  pb.buffer_packets = 50;
  pb.link_bandwidth = mbps(10);
  PushbackQueue pb_q(pb);

  DrrConfig drr;
  drr.buffer_packets = 100;
  DrrQueue drr_q(drr);

  RateLimiterQueue rl_q(100);
  rl_q.install_limit(PathId::of({5}), mbps(1), /*expires=*/100.0);

  std::set<FlowId> legit{1};
  PriorityFairConfig pf;
  pf.buffer_packets = 50;
  pf.link_bandwidth = mbps(10);
  PriorityFairQueue pf_q(pf, [&legit](FlowId f) { return legit.count(f) != 0; });

  struct Case {
    const char* scheme;
    QueueDisc* q;
  } cases[] = {{"red", &red_q},          {"red-pd", &red_pd_q},
               {"pushback", &pb_q},      {"drr", &drr_q},
               {"rate-limiter", &rl_q},  {"priority-fair", &pf_q}};
  for (const Case& c : cases) {
    c.q->enqueue(data(1, PathId::of({1, 11})), 0.0);
    c.q->enqueue(data(2, PathId::of({5, 9})), 0.001);
    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(snapshot_of(*c.q, 0.01), &v, &err))
        << c.scheme << ": " << err;
    EXPECT_EQ(v.string_or("scheme", ""), c.scheme);
    EXPECT_NE(v.get("packets"), nullptr) << c.scheme;
    EXPECT_NE(v.get("drops"), nullptr) << c.scheme;
    EXPECT_NE(v.get("admissions"), nullptr) << c.scheme;
  }
}

TEST(BaselineSnapshot, TracedQueueDelegatesToInner) {
  auto inner = std::make_unique<RateLimiterQueue>(10);
  RateLimiterQueue* raw = inner.get();
  TraceRecorder rec;
  TracedQueue traced(std::move(inner), &rec);
  traced.enqueue(data(1, PathId::of({1})), 0.0);
  json::JsonWriter direct;
  raw->snapshot_state(direct, 0.01);
  json::JsonWriter via;
  traced.snapshot_state(via, 0.01);
  EXPECT_EQ(via.str(), direct.str());
}

}  // namespace
}  // namespace floc {
