// Perf-trajectory model: BENCH_perf.json round-trip through to_json/parse,
// and the regression-gate semantics of compare_perf — self-compare passes,
// an injected 2x slowdown on a gated metric fails, a baseline metric missing
// from the current report is schema drift, and noise widens tolerance.
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "telemetry/perf_baseline.h"

namespace floc::telemetry {
namespace {

PerfReport sample_report() {
  PerfReport r;
  r.git = "abc1234";
  r.mode = "quick";
  r.seed = 42;
  r.repeats = 3;
  r.add("micro.siphash.ns", 18.5, "ns/op", 0.02, /*higher=*/false,
        /*gate=*/false);
  r.add("ratio.floc_vs_droptail.steady", 1.8, "ratio", 0.03, /*higher=*/false,
        /*gate=*/true);
  r.add("alloc.floc_steady.allocs_per_kpkt", 12.0, "allocs/kpkt", 0.0,
        /*higher=*/false, /*gate=*/true);
  r.add("macro.fig06.events_per_sec", 5.0e5, "events/s", 0.05,
        /*higher=*/true, /*gate=*/false);
  return r;
}

TEST(PerfBaseline, JsonRoundTripPreservesEverything) {
  const PerfReport r = sample_report();
  PerfReport back;
  std::string err;
  ASSERT_TRUE(PerfReport::parse(r.to_json(), &back, &err)) << err;
  EXPECT_EQ(back.schema_version, kPerfSchemaVersion);
  EXPECT_EQ(back.bench, r.bench);
  EXPECT_EQ(back.git, r.git);
  EXPECT_EQ(back.mode, r.mode);
  EXPECT_EQ(back.seed, r.seed);
  EXPECT_EQ(back.repeats, r.repeats);
  ASSERT_EQ(back.metrics.size(), r.metrics.size());
  for (std::size_t i = 0; i < r.metrics.size(); ++i) {
    EXPECT_EQ(back.metrics[i].name, r.metrics[i].name);
    EXPECT_DOUBLE_EQ(back.metrics[i].value, r.metrics[i].value);
    EXPECT_EQ(back.metrics[i].unit, r.metrics[i].unit);
    EXPECT_DOUBLE_EQ(back.metrics[i].noise, r.metrics[i].noise);
    EXPECT_EQ(back.metrics[i].higher_is_better, r.metrics[i].higher_is_better);
    EXPECT_EQ(back.metrics[i].gate, r.metrics[i].gate);
  }
}

TEST(PerfBaseline, SaveLoadRoundTrip) {
  const PerfReport r = sample_report();
  const std::string path = "perf_baseline_test.BENCH.json";
  std::string err;
  ASSERT_TRUE(r.save(path, &err)) << err;
  PerfReport back;
  ASSERT_TRUE(PerfReport::load(path, &back, &err)) << err;
  EXPECT_EQ(back.metrics.size(), r.metrics.size());
  std::remove(path.c_str());
}

TEST(PerfBaseline, SelfCompareIsClean) {
  const PerfReport r = sample_report();
  const PerfComparison cmp = compare_perf(r, r);
  EXPECT_TRUE(cmp.ok());
  EXPECT_EQ(cmp.gated_regressions, 0);
  EXPECT_EQ(cmp.regressions, 0);
  EXPECT_EQ(cmp.improvements, 0);
  EXPECT_EQ(cmp.missing, 0);
  for (const PerfDelta& d : cmp.deltas) {
    EXPECT_EQ(d.verdict, PerfVerdict::kOk) << d.name;
  }
}

TEST(PerfBaseline, InjectedSlowdownOnGatedMetricFailsGate) {
  const PerfReport base = sample_report();
  PerfReport slow = base;
  for (PerfMetric& m : slow.metrics) {
    if (m.name == "ratio.floc_vs_droptail.steady") m.value *= 2.0;  // 2x worse
  }
  const PerfComparison cmp = compare_perf(base, slow);
  EXPECT_FALSE(cmp.ok());
  EXPECT_EQ(cmp.gated_regressions, 1);
  bool found = false;
  for (const PerfDelta& d : cmp.deltas) {
    if (d.name != "ratio.floc_vs_droptail.steady") continue;
    found = true;
    EXPECT_EQ(d.verdict, PerfVerdict::kRegressed);
    EXPECT_TRUE(d.gated);
    EXPECT_NEAR(d.rel_delta, 1.0, 1e-9);
  }
  EXPECT_TRUE(found);
  // The human table marks the row for the log reader.
  EXPECT_NE(cmp.table().find("REGRESSED"), std::string::npos) << cmp.table();
}

TEST(PerfBaseline, UngatedSlowdownIsReportedButDoesNotFail) {
  const PerfReport base = sample_report();
  PerfReport slow = base;
  for (PerfMetric& m : slow.metrics) {
    if (m.name == "micro.siphash.ns") m.value *= 2.0;
  }
  const PerfComparison cmp = compare_perf(base, slow);
  EXPECT_TRUE(cmp.ok());  // gate unaffected
  EXPECT_EQ(cmp.gated_regressions, 0);
  EXPECT_EQ(cmp.regressions, 1);  // still counted and visible
  // --gate-all promotes it to a failure (same-machine A/B mode).
  PerfCompareOptions all;
  all.gate_all = true;
  EXPECT_EQ(compare_perf(base, slow, all).gated_regressions, 1);
}

TEST(PerfBaseline, ImprovementInGoodDirectionIsNotARegression) {
  const PerfReport base = sample_report();
  PerfReport fast = base;
  for (PerfMetric& m : fast.metrics) {
    if (m.name == "macro.fig06.events_per_sec") m.value *= 2.0;  // higher=good
    if (m.name == "ratio.floc_vs_droptail.steady") m.value *= 0.5;  // lower=good
  }
  const PerfComparison cmp = compare_perf(base, fast);
  EXPECT_TRUE(cmp.ok());
  EXPECT_EQ(cmp.improvements, 2);
}

TEST(PerfBaseline, MissingBaselineMetricIsSchemaDrift) {
  const PerfReport base = sample_report();
  PerfReport renamed = base;
  renamed.metrics[1].name = "ratio.floc_vs_droptail.renamed";
  const PerfComparison cmp = compare_perf(base, renamed);
  EXPECT_FALSE(cmp.ok());
  EXPECT_EQ(cmp.missing, 1);
  bool saw_missing = false, saw_new = false;
  for (const PerfDelta& d : cmp.deltas) {
    if (d.verdict == PerfVerdict::kMissing) saw_missing = true;
    if (d.verdict == PerfVerdict::kNew) saw_new = true;
  }
  EXPECT_TRUE(saw_missing);
  EXPECT_TRUE(saw_new);  // the renamed metric starts a new trajectory
}

TEST(PerfBaseline, SchemaVersionMismatchFailsCompare) {
  const PerfReport base = sample_report();
  PerfReport other = base;
  other.schema_version = kPerfSchemaVersion + 1;
  const PerfComparison cmp = compare_perf(base, other);
  EXPECT_TRUE(cmp.schema_mismatch);
  EXPECT_FALSE(cmp.ok());
}

TEST(PerfBaseline, NoiseWidensTolerance) {
  // A 40% shift on a metric whose recorded noise is 10%+10% stays within
  // tol = 3 * 0.20 = 60%; the same shift with near-zero noise regresses
  // (tol = max(0.15, ~0)).
  PerfReport base, cur;
  base.add("noisy.metric", 100.0, "ns/op", 0.10, false, true);
  cur.add("noisy.metric", 140.0, "ns/op", 0.10, false, true);
  EXPECT_TRUE(compare_perf(base, cur).ok());

  PerfReport base2, cur2;
  base2.add("stable.metric", 100.0, "ns/op", 0.001, false, true);
  cur2.add("stable.metric", 140.0, "ns/op", 0.001, false, true);
  EXPECT_EQ(compare_perf(base2, cur2).gated_regressions, 1);
}

TEST(PerfBaseline, ParseRejectsGarbageAndWrongShape) {
  PerfReport out;
  std::string err;
  EXPECT_FALSE(PerfReport::parse("not json", &out, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(PerfReport::parse("[1, 2]", &out, &err));  // not an object
  EXPECT_FALSE(PerfReport::parse("{}", &out, &err));      // missing fields
}

}  // namespace
}  // namespace floc::telemetry
