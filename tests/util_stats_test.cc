#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace floc {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, Reset) {
  RunningStats s;
  s.add(10.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(Ewma, SeedsWithFirstValue) {
  Ewma e(0.2);
  EXPECT_FALSE(e.seeded());
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, Converges) {
  Ewma e(0.2, 0.0);
  e.set(0.0);
  for (int i = 0; i < 100; ++i) e.add(1.0);
  EXPECT_NEAR(e.value(), 1.0, 1e-6);
}

TEST(Ewma, MatchesFormula) {
  // Eq. IV.6 form: v' = beta*x + (1-beta)*v.
  Ewma e(0.25);
  e.set(0.8);
  e.add(0.4);
  EXPECT_DOUBLE_EQ(e.value(), 0.25 * 0.4 + 0.75 * 0.8);
}

TEST(Cdf, QuantilesOfUniformSequence) {
  Cdf c;
  for (int i = 1; i <= 100; ++i) c.add(i);
  EXPECT_DOUBLE_EQ(c.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 100.0);
  EXPECT_NEAR(c.quantile(0.5), 50.5, 0.01);
}

TEST(Cdf, FractionBelow) {
  Cdf c;
  for (int i = 1; i <= 10; ++i) c.add(i);
  EXPECT_DOUBLE_EQ(c.fraction_below(5.5), 0.5);
  EXPECT_DOUBLE_EQ(c.fraction_below(0.0), 0.0);
  EXPECT_DOUBLE_EQ(c.fraction_below(100.0), 1.0);
}

TEST(Cdf, MeanAndCurve) {
  Cdf c;
  c.add_all({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(c.mean(), 2.5);
  const auto curve = c.curve(5);
  ASSERT_EQ(curve.size(), 5u);
  EXPECT_DOUBLE_EQ(curve.front().first, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().first, 4.0);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Cdf, EmptySafe) {
  Cdf c;
  EXPECT_EQ(c.quantile(0.5), 0.0);
  EXPECT_EQ(c.mean(), 0.0);
  EXPECT_TRUE(c.curve(10).empty());
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-5.0);   // clamps to bin 0
  h.add(100.0);  // clamps to last bin
  EXPECT_DOUBLE_EQ(h.bin_count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_count(9), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(ThroughputRecorder, MeanOverWindow) {
  ThroughputRecorder r;
  r.record("a", 1.0, 1000.0);
  r.record("a", 2.0, 1000.0);
  r.record("a", 3.0, 1000.0);
  // Between t=0 and t=4: 3000 bytes in 4 s = 6000 bps.
  EXPECT_DOUBLE_EQ(r.mean_bps("a", 0.0, 4.0), 6000.0);
  // Between t=1.5 and t=3.5: 2000 bytes in 2 s = 8000 bps.
  EXPECT_DOUBLE_EQ(r.mean_bps("a", 1.5, 3.5), 8000.0);
}

TEST(ThroughputRecorder, UnknownKeyAndTotals) {
  ThroughputRecorder r;
  EXPECT_EQ(r.mean_bps("missing", 0.0, 1.0), 0.0);
  r.record("a", 0.5, 100.0);
  r.record("b", 0.5, 300.0);
  EXPECT_DOUBLE_EQ(r.total_bps(0.0, 1.0), 400.0 * 8.0);
  EXPECT_EQ(r.keys().size(), 2u);
}

TEST(JainFairness, KnownValues) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({5.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({3.0, 3.0, 3.0}), 1.0);
  // One flow hogging everything among n flows -> 1/n.
  EXPECT_DOUBLE_EQ(jain_fairness({1.0, 0.0, 0.0, 0.0}), 0.25);
  // Textbook example: {1,2,3} -> 36/(3*14).
  EXPECT_NEAR(jain_fairness({1.0, 2.0, 3.0}), 36.0 / 42.0, 1e-12);
}

TEST(JainFairness, ZeroAllocationsSafe) {
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0}), 1.0);
}

TEST(FormatRow, Formats) {
  const std::string s = format_row("label", {1.0, 2.5}, 6, 1);
  EXPECT_EQ(s, "label    1.0    2.5");
}

}  // namespace
}  // namespace floc
