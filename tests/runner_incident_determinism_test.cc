// Incident-bundle determinism (the flight-recorder --jobs contract).
//
// Runs a shrunk fig06-style attack case per sweep slot — each with its own
// world, Telemetry, FlightRecorder and a threshold alert wired for one fire
// edge — and serializes the recorder with to_json(). The parallel sweep
// (--jobs 8) must produce byte-identical bundle text to the serial one
// (--jobs 1): every bundle field derives from simulated time, registration
// order, or sorted-key state dumps, never wall clock or hash iteration
// order.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "runner/scenario_runner.h"
#include "telemetry/alerts.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/telemetry.h"
#include "topology/tree_scenario.h"
#include "util/json.h"
#include "util/seed.h"

namespace floc {
namespace {

constexpr std::uint64_t kMaster = 42;

struct CaseBundle {
  std::uint64_t seed = 0;
  std::string bundle;  // FlightRecorder::to_json()
};

CaseBundle run_case(AttackType attack, std::uint64_t seed) {
  TreeScenarioConfig cfg;
  cfg.scale = 0.05;
  cfg.duration = 12.0;
  cfg.measure_start = 6.0;
  cfg.measure_end = 12.0;
  cfg.scheme = DefenseScheme::kFloc;
  cfg.attack = attack;
  cfg.attack_rate = mbps(2.0);
  cfg.seed = seed;
  TreeScenario s(cfg);

  telemetry::Telemetry tel;
  tel.journal.set_enabled(telemetry::EventKind::kDrop, false);
  s.floc_queue()->attach_telemetry(&tel);

  telemetry::FlightRecorder recorder(&tel.registry);
  recorder.set_journal(&tel.journal);
  recorder.set_bench("incident_determinism");
  recorder.add_queue("floc-bottleneck", s.floc_queue());
  recorder.attach(&s.sim(), 0.5, cfg.duration);

  telemetry::AlertEngine alerts(&tel.registry);
  telemetry::AlertRule rule;
  rule.name = "floc_drops_seen";
  rule.metric = "floc.drops.total";
  rule.kind = telemetry::AlertKind::kThreshold;
  rule.threshold = 1.0;
  rule.clear_threshold = 0.0;  // never clears: one fire edge, one capture
  alerts.add_rule(rule);
  alerts.set_flight_recorder(&recorder);
  for (TimeSec t = 0.5; t < cfg.duration; t += 0.5) {
    s.sim().schedule_at(t, [&alerts, &s] { alerts.sample(s.sim().now()); });
  }

  s.run();

  CaseBundle c;
  c.seed = seed;
  c.bundle = recorder.to_json();
  return c;
}

std::vector<CaseBundle> sweep(int jobs) {
  const AttackType attacks[] = {AttackType::kTcpPopulation, AttackType::kCbr};
  return runner::run_indexed<CaseBundle>(jobs, 2, [&](std::size_t i) {
    return run_case(attacks[i],
                    derive_seed(kMaster, i, kSeedStreamTreeScenario));
  });
}

TEST(IncidentDeterminism, ParallelBundlesMatchSerialByteForByte) {
  const auto serial = sweep(1);
  const auto parallel = sweep(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].seed, parallel[i].seed) << "case " << i;
    EXPECT_EQ(serial[i].bundle, parallel[i].bundle)
        << "case " << i << ": incident bundle diverged across --jobs";
  }
}

TEST(IncidentDeterminism, BundlesCaptureTheAlertAndTheQueueState) {
  const auto runs = sweep(1);
  for (const CaseBundle& c : runs) {
    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(c.bundle, &v, &err)) << err;
    EXPECT_EQ(v.string_or("schema", ""), "floc-incident-v1");
    EXPECT_GE(v.number_or("captured_total", 0.0), 1.0)
        << "the drops-threshold alert never fired";
    const json::Value* incidents = v.get("incidents");
    ASSERT_NE(incidents, nullptr);
    ASSERT_FALSE(incidents->items.empty());
    const json::Value& inc = incidents->items[0];
    const json::Value* trig = inc.get("trigger");
    ASSERT_NE(trig, nullptr);
    EXPECT_EQ(trig->string_or("source", ""), "alert");
    EXPECT_EQ(trig->string_or("name", ""), "floc_drops_seen");
    const json::Value* state = inc.get("state");
    ASSERT_NE(state, nullptr);
    const json::Value* q = state->get("floc-bottleneck");
    ASSERT_NE(q, nullptr);
    EXPECT_EQ(q->string_or("scheme", ""), "floc");
    EXPECT_NE(q->get("state_budget"), nullptr);
  }
}

}  // namespace
}  // namespace floc
