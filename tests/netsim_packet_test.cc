#include "netsim/packet.h"

#include <gtest/gtest.h>

namespace floc {
namespace {

TEST(PathId, BuildAndAccess) {
  PathId p = PathId::of({10, 20, 30});
  EXPECT_EQ(p.length(), 3);
  EXPECT_EQ(p.at(0), 10u);  // nearest to the router
  EXPECT_EQ(p.at(2), 30u);
  EXPECT_EQ(p.origin(), 30u);
  EXPECT_FALSE(p.empty());
}

TEST(PathId, EmptyPath) {
  PathId p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.origin(), 0u);
  EXPECT_EQ(p.length(), 0);
}

TEST(PathId, Equality) {
  EXPECT_EQ(PathId::of({1, 2, 3}), PathId::of({1, 2, 3}));
  EXPECT_FALSE(PathId::of({1, 2, 3}) == PathId::of({1, 2}));
  EXPECT_FALSE(PathId::of({1, 2, 3}) == PathId::of({1, 2, 4}));
}

TEST(PathId, PrefixMatching) {
  const PathId full = PathId::of({1, 2, 3});
  EXPECT_TRUE(full.has_prefix(PathId::of({1})));
  EXPECT_TRUE(full.has_prefix(PathId::of({1, 2})));
  EXPECT_TRUE(full.has_prefix(full));
  EXPECT_FALSE(full.has_prefix(PathId::of({2})));
  EXPECT_FALSE(PathId::of({1}).has_prefix(full));
}

TEST(PathId, TruncateToPrefix) {
  PathId p = PathId::of({5, 6, 7, 8});
  p.truncate_to(2);
  EXPECT_EQ(p, PathId::of({5, 6}));
  EXPECT_EQ(p.origin(), 6u);
}

TEST(PathId, KeyUniqueAndStable) {
  const PathId a = PathId::of({1, 2, 3});
  EXPECT_EQ(a.key(), PathId::of({1, 2, 3}).key());
  EXPECT_NE(a.key(), PathId::of({1, 2}).key());
  EXPECT_NE(a.key(), PathId::of({3, 2, 1}).key());
  EXPECT_NE(PathId().key(), a.key());
}

TEST(PathId, ToString) {
  EXPECT_EQ(PathId::of({1, 2}).to_string(), "{1,2}");
  EXPECT_EQ(PathId().to_string(), "{}");
}

TEST(Packet, Defaults) {
  Packet p;
  EXPECT_EQ(p.type, PacketType::kData);
  EXPECT_EQ(p.size_bytes, 1500);
  EXPECT_EQ(p.cap0, 0u);
}

TEST(PacketType, Names) {
  EXPECT_STREQ(to_string(PacketType::kSyn), "SYN");
  EXPECT_STREQ(to_string(PacketType::kAck), "ACK");
}

}  // namespace
}  // namespace floc
