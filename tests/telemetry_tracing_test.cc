// Tracer unit tests: span lifecycle (begin/annotate/end/end_dropped/
// complete), parent links, the bounded closed-span ring, and the lifetime
// counters that survive eviction.
#include <gtest/gtest.h>

#include "telemetry/tracing.h"

namespace floc::telemetry {
namespace {

TEST(Tracer, BeginEndProducesClosedSpanWithParentLink) {
  Tracer tr;
  const SpanId root = tr.begin(1.0, /*trace=*/7, /*parent=*/0,
                               SpanKind::kTcpSend, /*pid=*/3, /*tid=*/7,
                               /*seq=*/100, /*bytes=*/1500);
  const SpanId child = tr.begin(1.5, 7, root, SpanKind::kQueue, 4, 0);
  EXPECT_NE(root, 0u);
  EXPECT_NE(child, root);
  EXPECT_EQ(tr.open_count(), 2u);

  tr.end(child, 2.0);
  tr.end(root, 3.0);
  ASSERT_EQ(tr.spans().size(), 2u);
  EXPECT_EQ(tr.open_count(), 0u);

  const Span* r = tr.find(root);
  const Span* c = tr.find(child);
  ASSERT_NE(r, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(r->trace, 7u);
  EXPECT_EQ(r->parent, 0u);
  EXPECT_EQ(c->parent, root);
  EXPECT_EQ(r->kind, SpanKind::kTcpSend);
  EXPECT_EQ(c->kind, SpanKind::kQueue);
  EXPECT_DOUBLE_EQ(r->begin, 1.0);
  EXPECT_DOUBLE_EQ(r->end, 3.0);
  EXPECT_DOUBLE_EQ(r->duration(), 2.0);
  EXPECT_EQ(r->seq, 100u);
  EXPECT_EQ(r->bytes, 1500);
  EXPECT_EQ(r->status, 0u);
}

TEST(Tracer, AnnotateAccumulatesWhileOpenOnly) {
  Tracer tr;
  const SpanId s = tr.begin(0.0, 1, 0, SpanKind::kQueue, 0, 0);
  tr.annotate(s, "mode", "attack");
  tr.annotate(s, "tokens", std::string("300/1500"));
  tr.end(s, 1.0);
  tr.annotate(s, "late", "ignored");  // closed: no-op

  const Span* sp = tr.find(s);
  ASSERT_NE(sp, nullptr);
  EXPECT_EQ(sp->annot, "mode=attack;tokens=300/1500");
}

TEST(Tracer, EndDroppedRecordsStatusAndReason) {
  Tracer tr;
  const SpanId s = tr.begin(0.0, 1, 0, SpanKind::kQueue, 0, 0);
  tr.end_dropped(s, 0.5, /*status=*/4, "token-exhausted");

  const Span* sp = tr.find(s);
  ASSERT_NE(sp, nullptr);
  EXPECT_EQ(sp->status, 4u);
  EXPECT_NE(sp->annot.find("drop=token-exhausted"), std::string::npos);
  EXPECT_EQ(tr.dropped(), 1u);
}

TEST(Tracer, EndIsIdempotentAcrossLayers) {
  // Two layers may race to close the same span (queue drop hook + link).
  Tracer tr;
  const SpanId s = tr.begin(0.0, 1, 0, SpanKind::kQueue, 0, 0);
  tr.end_dropped(s, 0.5, 2, "buffer-overflow");
  tr.end(s, 9.0);           // second close: no-op
  tr.end(12345, 9.0);       // unknown id: no-op
  tr.end_dropped(s, 9.5, 7, "other");

  ASSERT_EQ(tr.spans().size(), 1u);
  const Span* sp = tr.find(s);
  ASSERT_NE(sp, nullptr);
  EXPECT_DOUBLE_EQ(sp->end, 0.5);
  EXPECT_EQ(sp->status, 2u);
  EXPECT_EQ(tr.closed(), 1u);
}

TEST(Tracer, CompleteRecordsKnownInterval) {
  Tracer tr;
  const SpanId s = tr.complete(1.0, 1.012, /*trace=*/9, /*parent=*/0,
                               SpanKind::kLinkTx, 5, 2, 42, 1500);
  const Span* sp = tr.find(s);
  ASSERT_NE(sp, nullptr);
  EXPECT_DOUBLE_EQ(sp->begin, 1.0);
  EXPECT_DOUBLE_EQ(sp->end, 1.012);
  EXPECT_EQ(sp->kind, SpanKind::kLinkTx);
  EXPECT_EQ(tr.begun(), 1u);
  EXPECT_EQ(tr.closed(), 1u);
  EXPECT_EQ(tr.count(SpanKind::kLinkTx), 1u);
}

TEST(Tracer, RingEvictsOldestButCountersSurvive) {
  Tracer tr(/*max_spans=*/8);
  for (int i = 0; i < 50; ++i) {
    tr.complete(i, i + 0.5, 1, 0, SpanKind::kOther, 0, 0);
  }
  EXPECT_TRUE(tr.overflowed());
  EXPECT_EQ(tr.spans().size(), 8u);
  EXPECT_EQ(tr.begun(), 50u);
  EXPECT_EQ(tr.closed(), 50u);
  EXPECT_EQ(tr.count(SpanKind::kOther), 50u);
  // Oldest first: the retained window is the most recent 8 spans.
  EXPECT_DOUBLE_EQ(tr.spans().front().begin, 42.0);
  EXPECT_DOUBLE_EQ(tr.spans().back().begin, 49.0);
}

TEST(Tracer, ClearResetsEverything) {
  Tracer tr(4);
  const SpanId open = tr.begin(0.0, 1, 0, SpanKind::kQueue, 0, 0);
  for (int i = 0; i < 10; ++i) tr.complete(i, i + 1, 1, 0, SpanKind::kOther, 0, 0);
  ASSERT_TRUE(tr.overflowed());
  tr.clear();
  EXPECT_EQ(tr.spans().size(), 0u);
  EXPECT_EQ(tr.open_count(), 0u);
  EXPECT_EQ(tr.begun(), 0u);
  EXPECT_EQ(tr.closed(), 0u);
  EXPECT_EQ(tr.dropped(), 0u);
  EXPECT_EQ(tr.count(SpanKind::kOther), 0u);
  EXPECT_FALSE(tr.overflowed());
  tr.end(open, 1.0);  // stale id after clear: no-op
  EXPECT_EQ(tr.spans().size(), 0u);
}

}  // namespace
}  // namespace floc::telemetry
