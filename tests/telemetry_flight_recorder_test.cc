// FlightRecorder: pre-incident metric ring bounding, short/long-window
// delta bracketing (including clipped windows), journal/span tails, state
// dumps, max_incidents suppression accounting, and the bundle-file contract
// (parseable by util/json, no wall-clock fields, byte-identical across
// identical runs).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/event_journal.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/tracing.h"
#include "util/json.h"

namespace floc::telemetry {
namespace {

IncidentTrigger alert_at(TimeSec t, const std::string& name) {
  IncidentTrigger trig;
  trig.source = IncidentTrigger::Source::kAlert;
  trig.time = t;
  trig.name = name;
  trig.detail = "test";
  trig.observed = 1.0;
  return trig;
}

TEST(FlightRecorder, RingIsBoundedAndDeltasBracketTheWindows) {
  MetricRegistry reg;
  Counter* drops = reg.counter("q.drops");
  FlightRecorder::Config cfg;
  cfg.metric_ring = 8;
  cfg.short_window = 2.0;
  cfg.long_window = 10.0;
  FlightRecorder rec(&reg, cfg);

  // One drop per second, sampled each second: t=0..30 -> 31 rows offered,
  // ring keeps the last 8 (t=23..30).
  for (double t = 0.0; t <= 30.0; t += 1.0) {
    drops->add(1);
    rec.sample(t);
  }
  EXPECT_EQ(rec.ring_rows(), 8u);

  const IncidentBundle* b = rec.capture(alert_at(30.0, "storm"));
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->metrics.size(), 1u);
  EXPECT_EQ(b->metrics[0].name, "q.drops");
  // Short window brackets cleanly: value 31 now vs 29 at t=28.
  EXPECT_TRUE(b->metrics[0].have_short);
  EXPECT_DOUBLE_EQ(b->short_since, 28.0);
  EXPECT_DOUBLE_EQ(b->metrics[0].delta_short, 2.0);
  // The long window (t=20) reaches past the ring: the delta clips to the
  // oldest kept row (t=23) and long_since records the clip.
  EXPECT_TRUE(b->metrics[0].have_long);
  EXPECT_DOUBLE_EQ(b->long_since, 23.0);
  EXPECT_DOUBLE_EQ(b->metrics[0].delta_long, 7.0);
}

TEST(FlightRecorder, EmptyRingCapturesValuesWithoutDeltas) {
  MetricRegistry reg;
  reg.counter("q.drops")->add(5);
  FlightRecorder rec(&reg);
  const IncidentBundle* b = rec.capture(alert_at(1.0, "cold"));
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->metrics.size(), 1u);
  EXPECT_DOUBLE_EQ(b->metrics[0].value, 5.0);
  EXPECT_FALSE(b->metrics[0].have_short);
  EXPECT_FALSE(b->metrics[0].have_long);
  EXPECT_LT(b->short_since, 0.0);
}

TEST(FlightRecorder, LateRegisteredMetricsHaveNoDeltaAgainstOldRows) {
  MetricRegistry reg;
  reg.counter("first");
  FlightRecorder rec(&reg);
  rec.sample(1.0);               // one-column row
  reg.counter("second")->add(3);  // registers after the row was sampled
  const IncidentBundle* b = rec.capture(alert_at(2.0, "late"));
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->metrics.size(), 2u);
  EXPECT_TRUE(b->metrics[0].have_short);
  EXPECT_FALSE(b->metrics[1].have_short) << "no column to bracket against";
  EXPECT_DOUBLE_EQ(b->metrics[1].value, 3.0);
}

TEST(FlightRecorder, MaxIncidentsSuppressesButKeepsCounting) {
  MetricRegistry reg;
  FlightRecorder::Config cfg;
  cfg.max_incidents = 2;
  FlightRecorder rec(&reg, cfg);
  EXPECT_NE(rec.capture(alert_at(1.0, "a")), nullptr);
  EXPECT_NE(rec.capture(alert_at(2.0, "b")), nullptr);
  EXPECT_EQ(rec.capture(alert_at(3.0, "c")), nullptr);
  EXPECT_EQ(rec.incidents().size(), 2u);
  EXPECT_EQ(rec.captured_total(), 3u);
  EXPECT_EQ(rec.suppressed(), 1u);
}

TEST(FlightRecorder, BundlesCarryJournalTailSpansAndStateDumps) {
  MetricRegistry reg;
  EventJournal journal;
  Tracer tracer;
  FlightRecorder::Config cfg;
  cfg.journal_tail = 2;
  cfg.span_tail = 2;
  FlightRecorder rec(&reg, cfg);
  rec.set_journal(&journal);
  rec.set_tracer(&tracer);
  rec.add_state("widget", [](json::JsonWriter& w, TimeSec now) {
    w.begin_object();
    w.field("now", now);
    w.field("gears", 3);
    w.end_object();
  });

  for (int i = 0; i < 5; ++i) {
    journal.record(static_cast<double>(i), EventKind::kModeTransition, "floc",
                   "tick", static_cast<std::uint64_t>(i));
    const SpanId id = tracer.begin(static_cast<double>(i), 7, 0,
                                   SpanKind::kQueue, 1, 2);
    tracer.end(id, static_cast<double>(i) + 0.5);
  }

  const IncidentBundle* b = rec.capture(alert_at(5.0, "full"));
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->journal_total, 5u);
  ASSERT_EQ(b->journal_tail.size(), 2u);  // tail = the newest events
  EXPECT_EQ(b->journal_tail.back().a, 4u);
  ASSERT_EQ(b->spans.size(), 2u);
  EXPECT_DOUBLE_EQ(b->spans.back().begin, 4.0);
  ASSERT_EQ(b->states.size(), 1u);
  EXPECT_EQ(b->states[0].first, "widget");
  json::Value state;
  ASSERT_TRUE(json::parse(b->states[0].second, &state));
  EXPECT_DOUBLE_EQ(state.number_or("now", -1.0), 5.0);
  EXPECT_DOUBLE_EQ(state.number_or("gears", -1.0), 3.0);
}

TEST(FlightRecorder, SavedFileParsesAndHoldsNoWallClockFields) {
  MetricRegistry reg;
  reg.counter("q.drops")->add(2);
  FlightRecorder rec(&reg);
  rec.set_bench("unit_bench");
  rec.add_state("q", [](json::JsonWriter& w, TimeSec) {
    w.begin_object();
    w.field("packets", 1);
    w.end_object();
  });
  rec.sample(1.0);
  rec.capture(alert_at(2.0, "saved"));

  const std::string path = "flight_recorder_test.incident.json";
  std::string err;
  ASSERT_TRUE(rec.save(path, &err)) << err;
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  std::remove(path.c_str());

  json::Value v;
  ASSERT_TRUE(json::parse(buf.str(), &v, &err)) << err;
  EXPECT_EQ(v.string_or("schema", ""), "floc-incident-v1");
  EXPECT_EQ(v.string_or("bench", ""), "unit_bench");
  const json::Value* incidents = v.get("incidents");
  ASSERT_NE(incidents, nullptr);
  ASSERT_EQ(incidents->items.size(), 1u);
  const json::Value& inc = incidents->items[0];
  const json::Value* trig = inc.get("trigger");
  ASSERT_NE(trig, nullptr);
  EXPECT_EQ(trig->string_or("source", ""), "alert");
  EXPECT_EQ(trig->string_or("name", ""), "saved");

  // The determinism contract: nothing in a bundle may come from the wall
  // clock (manifests carry wall time; incident bundles must not).
  for (const char* banned : {"wall", "unix", "start_ns", "clock_ns"}) {
    EXPECT_EQ(buf.str().find(banned), std::string::npos)
        << "wall-clock field '" << banned << "' in gated bundle content";
  }
}

TEST(FlightRecorder, IdenticalRunsSerializeByteIdentically) {
  auto run = [] {
    MetricRegistry reg;
    Counter* c = reg.counter("q.drops");
    FlightRecorder rec(&reg);
    rec.set_bench("twin");
    for (double t = 0.0; t < 5.0; t += 1.0) {
      c->add(3);
      rec.sample(t);
    }
    rec.capture(alert_at(4.5, "twin_alert"));
    return rec.to_json();
  };
  EXPECT_EQ(run(), run());
}

TEST(FlightRecorder, TriggerSourceNamesExist) {
  EXPECT_STREQ(to_string(IncidentTrigger::Source::kAlert), "alert");
  EXPECT_STREQ(to_string(IncidentTrigger::Source::kInvariant), "invariant");
  EXPECT_STREQ(to_string(IncidentTrigger::Source::kGate), "gate");
  EXPECT_STREQ(to_string(IncidentTrigger::Source::kManual), "manual");
}

}  // namespace
}  // namespace floc::telemetry
