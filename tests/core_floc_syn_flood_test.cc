// Control-packet handling under stress: SYN floods must not corrupt state,
// leak memory unboundedly, or crowd out established flows' bookkeeping.
#include <gtest/gtest.h>

#include "core/floc_queue.h"

namespace floc {
namespace {

Packet syn(FlowId flow, HostAddr src, const PathId& path) {
  Packet p;
  p.flow = flow;
  p.src = src;
  p.dst = 99;
  p.path = path;
  p.type = PacketType::kSyn;
  p.size_bytes = 40;
  return p;
}

TEST(SynFlood, BoundedByBufferAndExpiry) {
  FlocConfig cfg;
  cfg.link_bandwidth = mbps(10);
  cfg.buffer_packets = 100;
  cfg.flow_timeout = 0.5;
  cfg.control_interval = 0.1;
  FlocQueue q(cfg);
  const PathId path = PathId::of({6});
  // 50k distinct SYNs; the queue must keep functioning and the flow table
  // must shrink back after the timeout.
  double t = 0.0;
  for (int i = 0; i < 50000; ++i) {
    t = i * 1e-4;
    q.enqueue(syn(static_cast<FlowId>(i), static_cast<HostAddr>(i % 1000 + 1), path), t);
    if (i % 2 == 0) q.dequeue(t);
  }
  EXPECT_LE(q.packet_count(), 100u);
  // All flows idle past the timeout: control pass reclaims everything.
  q.run_control(t + 1.0);
  EXPECT_EQ(q.active_origin_path_count(), 0);
}

TEST(SynFlood, CapabilitiesStillIssuedUnderLoad) {
  FlocConfig cfg;
  cfg.link_bandwidth = mbps(10);
  cfg.buffer_packets = 50;
  FlocQueue q(cfg);
  const PathId path = PathId::of({6});
  int with_caps = 0, serviced = 0;
  for (int i = 0; i < 200; ++i) {
    q.enqueue(syn(static_cast<FlowId>(i), static_cast<HostAddr>(i + 1), path),
              i * 1e-3);
    auto out = q.dequeue(i * 1e-3);
    if (out.has_value()) {
      ++serviced;
      if (out->cap0 != 0) ++with_caps;
    }
  }
  EXPECT_GT(serviced, 0);
  EXPECT_EQ(with_caps, serviced);  // every serviced SYN carries a capability
}

TEST(SynFlood, SynsDoNotTriggerPreferentialDrops) {
  FlocConfig cfg;
  cfg.link_bandwidth = mbps(10);
  cfg.buffer_packets = 60;
  FlocQueue q(cfg);
  const PathId path = PathId::of({6});
  for (int i = 0; i < 20000; ++i) {
    q.enqueue(syn(static_cast<FlowId>(i % 100), static_cast<HostAddr>(i % 100 + 1), path),
              i * 1e-4);
    if (i % 2 == 0) q.dequeue(i * 1e-4);
  }
  EXPECT_EQ(q.drops_by_reason(DropReason::kPreferential), 0u);
  EXPECT_EQ(q.drops_by_reason(DropReason::kToken), 0u);
  // Buffer-full drops are the only defense against pure SYN volume here.
  EXPECT_GT(q.drops_by_reason(DropReason::kQueueFull), 0u);
}

}  // namespace
}  // namespace floc
