// Scalable-design parity (Section V-B): the bloom-filter drop accounting and
// the drop-rate flow estimation must track the exact reference design
// closely enough that the defense outcome is preserved.
#include <gtest/gtest.h>

#include "topology/tree_scenario.h"

namespace floc {
namespace {

TreeScenarioConfig base_cfg() {
  TreeScenarioConfig cfg;
  cfg.tree_degree = 3;
  cfg.tree_height = 2;
  cfg.legit_per_leaf = 4;
  cfg.attack_leaf_count = 2;
  cfg.attack_per_leaf = 8;
  cfg.target_link = mbps(20);
  cfg.internal_link = mbps(60);
  cfg.attack = AttackType::kCbr;
  cfg.attack_rate = mbps(1.0);
  cfg.duration = 25.0;
  cfg.attack_start = 3.0;
  cfg.measure_start = 8.0;
  cfg.measure_end = 25.0;
  cfg.scheme = DefenseScheme::kFloc;
  cfg.seed = 31;
  return cfg;
}

TreeScenario::ClassBandwidth run(const TreeScenarioConfig& cfg) {
  TreeScenario s(cfg);
  s.run();
  return s.class_bandwidth();
}

TEST(ScalableFloc, FilterModeTracksExactDesign) {
  TreeScenarioConfig exact = base_cfg();
  TreeScenarioConfig scalable = base_cfg();
  scalable.floc.use_scalable_filter = true;
  scalable.floc.filter.bits = 16;

  const auto e = run(exact);
  const auto s = run(scalable);
  // Same qualitative outcome: legit-path traffic dominates, attack confined.
  EXPECT_GT(s.legit_legit_bps, 0.5 * mbps(20));
  EXPECT_LT(s.attack_bps, 0.45 * mbps(20));
  // Within 35% of the exact design's legit-path bandwidth.
  EXPECT_NEAR(s.legit_legit_bps, e.legit_legit_bps, 0.35 * e.legit_legit_bps);
}

TEST(ScalableFloc, FlowEstimationModeStillConfines) {
  TreeScenarioConfig cfg = base_cfg();
  cfg.floc.estimate_flow_count = true;
  const auto r = run(cfg);
  EXPECT_GT(r.legit_legit_bps, 0.5 * mbps(20));
  EXPECT_LT(r.attack_bps, 0.45 * mbps(20));
}

TEST(ScalableFloc, FullyScalableMode) {
  // Filter-based MTD + estimated flow counts: no exact per-flow state in
  // the data path at all (the backbone-router configuration).
  TreeScenarioConfig cfg = base_cfg();
  cfg.floc.use_scalable_filter = true;
  cfg.floc.filter.bits = 16;
  cfg.floc.estimate_flow_count = true;
  const auto r = run(cfg);
  EXPECT_GT(r.legit_legit_bps, 0.45 * mbps(20));
  EXPECT_LT(r.attack_bps, 0.5 * mbps(20));
}

}  // namespace
}  // namespace floc
