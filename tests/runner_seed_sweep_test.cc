// Seed-sweep property test (ISSUE 5, satellite 2): a 32-run sweep with
// (master, run_index)-derived seeds must give every run its own RNG stream —
// pairwise-distinct seeds AND pairwise-distinct draw sequences — and the
// runner must hand the results back in submission order regardless of which
// worker finishes first, so the sweep output is identical for any --jobs.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "runner/scenario_runner.h"
#include "util/rng.h"
#include "util/seed.h"

namespace floc {
namespace {

constexpr std::size_t kRuns = 32;
constexpr std::size_t kDraws = 64;
constexpr std::uint64_t kMaster = 20100604;  // any fixed master seed

struct SweepRun {
  std::size_t index;
  std::uint64_t seed;
  std::array<std::uint64_t, kDraws> draws;
};

SweepRun run_one(std::size_t i, bool stagger) {
  // Adversarial completion order: early submissions finish last.
  if (stagger) {
    std::this_thread::sleep_for(std::chrono::microseconds(50 * (kRuns - i)));
  }
  SweepRun r;
  r.index = i;
  r.seed = derive_seed(kMaster, i, kSeedStreamTreeScenario);
  Rng rng(r.seed);
  for (auto& d : r.draws) d = rng.next_u64();
  return r;
}

TEST(SeedSweep, DistinctSeedsDistinctStreamsSubmissionOrder) {
  const auto runs = runner::run_indexed<SweepRun>(
      8, kRuns, [](std::size_t i) { return run_one(i, /*stagger=*/true); });
  ASSERT_EQ(runs.size(), kRuns);

  // Results arrive in submission order, not completion order.
  for (std::size_t i = 0; i < kRuns; ++i) EXPECT_EQ(runs[i].index, i);

  // Derived seeds are pairwise distinct.
  std::set<std::uint64_t> seeds;
  for (const auto& r : runs) seeds.insert(r.seed);
  EXPECT_EQ(seeds.size(), kRuns);

  // The streams themselves are pairwise distinct: for every pair, the first
  // kDraws draws differ somewhere (a shared or correlated stream would
  // reproduce another run's prefix).
  for (std::size_t i = 0; i < kRuns; ++i) {
    for (std::size_t j = i + 1; j < kRuns; ++j) {
      EXPECT_NE(runs[i].draws, runs[j].draws)
          << "runs " << i << " and " << j << " drew identical streams";
    }
  }
}

// The sweep's *content* is a pure function of (master, index): parallel and
// serial execution agree draw-for-draw.
TEST(SeedSweep, JobsInvariant) {
  const auto serial = runner::run_indexed<SweepRun>(
      1, kRuns, [](std::size_t i) { return run_one(i, /*stagger=*/false); });
  const auto parallel = runner::run_indexed<SweepRun>(
      8, kRuns, [](std::size_t i) { return run_one(i, /*stagger=*/true); });
  for (std::size_t i = 0; i < kRuns; ++i) {
    EXPECT_EQ(serial[i].seed, parallel[i].seed);
    EXPECT_EQ(serial[i].draws, parallel[i].draws) << "run " << i;
  }
}

}  // namespace
}  // namespace floc
