// EventJournal: total ordering (monotonic seq even among same-timestamp
// events), bounded ring with count preservation, per-kind storage gating,
// text and JSON export.
#include <string>

#include <gtest/gtest.h>

#include "telemetry/event_journal.h"

namespace floc::telemetry {
namespace {

TEST(Journal, RecordsFieldsInOrder) {
  EventJournal j;
  j.record(1.0, EventKind::kModeTransition, "floc", "uncongested->congested",
           1, 21.0);
  j.record(1.5, EventKind::kDrop, "floc", "", 2, 1500.0);
  ASSERT_EQ(j.events().size(), 2u);
  const DefenseEvent& e = j.events()[0];
  EXPECT_DOUBLE_EQ(e.time, 1.0);
  EXPECT_EQ(e.kind, EventKind::kModeTransition);
  EXPECT_EQ(e.component, "floc");
  EXPECT_EQ(e.detail, "uncongested->congested");
  EXPECT_EQ(e.a, 1u);
  EXPECT_DOUBLE_EQ(e.value, 21.0);
  EXPECT_EQ(j.total(), 2u);
}

TEST(Journal, SameTimestampEventsKeepRecordingOrder) {
  EventJournal j;
  // A burst of events at one simulated instant (e.g. a reboot wiping the
  // queue and flipping the mode) must stay totally ordered.
  for (int i = 0; i < 10; ++i) {
    j.record(2.0, i % 2 == 0 ? EventKind::kDrop : EventKind::kModeTransition,
             "floc", std::to_string(i));
  }
  for (std::size_t i = 1; i < j.events().size(); ++i) {
    EXPECT_LT(j.events()[i - 1].seq, j.events()[i].seq);
    EXPECT_EQ(j.events()[i].detail, std::to_string(i));
  }
  // of_kind preserves the same relative order.
  const auto drops = j.of_kind(EventKind::kDrop);
  ASSERT_EQ(drops.size(), 5u);
  for (std::size_t i = 1; i < drops.size(); ++i) {
    EXPECT_LT(drops[i - 1]->seq, drops[i]->seq);
  }
}

TEST(Journal, BoundedRingEvictsButCountsEverything) {
  EventJournal j(4);
  for (int i = 0; i < 10; ++i) {
    j.record(static_cast<double>(i), EventKind::kDrop, "q");
  }
  EXPECT_EQ(j.events().size(), 4u);
  EXPECT_TRUE(j.overflowed());
  EXPECT_EQ(j.overwritten(), 6u);  // exactly the evicted events, not a flag
  EXPECT_EQ(j.count(EventKind::kDrop), 10u);  // eviction does not under-count
  EXPECT_EQ(j.total(), 10u);
  // The survivors are the newest four.
  EXPECT_DOUBLE_EQ(j.events().front().time, 6.0);
  EXPECT_DOUBLE_EQ(j.events().back().time, 9.0);
  // A clipped journal declares itself in the JSON header: consumers can tell
  // a suffix-of-the-run export from a complete one without external state.
  const std::string json = j.to_json();
  EXPECT_NE(json.find("\"total\": 10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"stored\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"overwritten\": 6"), std::string::npos) << json;
}

TEST(Journal, DisabledKindsCountedNotStored) {
  EventJournal j;
  j.set_enabled(EventKind::kDrop, false);
  j.record(0.1, EventKind::kDrop, "q");
  j.record(0.2, EventKind::kModeTransition, "q");
  EXPECT_EQ(j.events().size(), 1u);
  EXPECT_EQ(j.events()[0].kind, EventKind::kModeTransition);
  EXPECT_EQ(j.count(EventKind::kDrop), 1u);
  EXPECT_FALSE(j.enabled(EventKind::kDrop));
  j.set_enabled(EventKind::kDrop, true);
  j.record(0.3, EventKind::kDrop, "q");
  EXPECT_EQ(j.events().size(), 2u);
  EXPECT_EQ(j.count(EventKind::kDrop), 2u);
}

TEST(Journal, DumpAndJson) {
  EventJournal j;
  j.record(1.25, EventKind::kAttackLatch, "floc", "1.2", 7, 0.004);
  const std::string dump = j.dump();
  EXPECT_NE(dump.find("attack-latch"), std::string::npos) << dump;
  EXPECT_NE(dump.find("floc"), std::string::npos);
  const std::string json = j.to_json();
  EXPECT_NE(json.find("\"kind\": \"attack-latch\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"component\": \"floc\""), std::string::npos);
  EXPECT_NE(json.find("\"overwritten\": 0"), std::string::npos) << json;
  j.clear();
  EXPECT_EQ(j.total(), 0u);
  EXPECT_TRUE(j.events().empty());
  EXPECT_FALSE(j.overflowed());
}

}  // namespace
}  // namespace floc::telemetry
