#include "util/rng.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace floc {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(5.0, 9.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 9.0);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng r(17);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 6000; ++i) counts[r.uniform_int(6)]++;
  EXPECT_EQ(counts.size(), 6u);
  for (const auto& [v, c] : counts) {
    EXPECT_LT(v, 6u);
    EXPECT_GT(c, 800);  // roughly uniform
  }
}

TEST(Rng, ChanceEdgeCases) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    EXPECT_FALSE(r.chance(-0.5));
    EXPECT_TRUE(r.chance(1.5));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng r(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng r(29);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng r(31);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(10.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.4);
}

TEST(Rng, ZipfSkewed) {
  Rng r(37);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) counts[r.zipf(100, 1.2)]++;
  // Rank 0 should dominate and the tail should be thin.
  EXPECT_GT(counts[0], counts[10] * 2);
  EXPECT_GT(counts[0], counts[50] * 5);
  for (int c : counts) EXPECT_GE(c, 0);
}

TEST(Rng, ZipfBounds) {
  Rng r(41);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.zipf(10, 0.9), 10u);
  EXPECT_EQ(r.zipf(1, 1.0), 0u);
}

TEST(Rng, ForkIndependence) {
  Rng a(99);
  Rng b = a.fork(1);
  Rng c = a.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (b.next_u64() == c.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace floc
