// Unit tests for the closed-loop (adaptive) attack sources: the feedback
// plumbing (SACK-style seq echo in every ACK), the adaptive shrew's duty
// search, the duty-cycler's starvation detector and quiet-length probe, and
// the probing covert source's flow rotation.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "netsim/drop_tail.h"
#include "transport/adaptive_source.h"
#include "transport/flow_monitor.h"
#include "transport/tcp_sink.h"

namespace floc {
namespace {

// Forwards to the real sink only while open; closing it mid-run starves the
// sender of feedback without touching topology or routing.
struct GateSink : Agent {
  TcpSink* inner = nullptr;
  bool syn_only = false;  // when closed to data, still answer handshakes
  bool open = true;
  void on_packet(Packet&& p) override {
    if (open || (syn_only && p.type == PacketType::kSyn)) {
      inner->on_packet(std::move(p));
    }
  }
};

struct World {
  Simulator sim;
  Network net{&sim};
  Host* client;
  Host* server;
  FlowMonitor monitor;
  std::unique_ptr<TcpSink> sink;
  GateSink gate;

  explicit World(BitsPerSec bottleneck = mbps(100),
                 std::size_t bottleneck_queue = 100) {
    client = net.add_host("c", 1);
    Router* r = net.add_router("r", 2);
    server = net.add_host("s", 3);
    net.connect(client, r, mbps(100), 0.001);
    net.set_default_queue_packets(bottleneck_queue);
    net.connect(r, server, bottleneck, 0.001);
    net.build_routes();
    sink = std::make_unique<TcpSink>(&sim, server, &monitor);
    gate.inner = sink.get();
    server->set_default_agent(&gate);
  }
};

// Captures every packet delivered to a flow id on the client side.
struct Collector : Agent {
  std::vector<Packet> pkts;
  void on_packet(Packet&& p) override { pkts.push_back(std::move(p)); }
};

// --- TcpSink seq echo ------------------------------------------------------

TEST(TcpSinkSeqEcho, EveryAckEchoesDeliveredSeq) {
  World w;
  Collector col;
  w.client->register_agent(7, &col);
  // Hand-deliver data segments 0, 1, 4 (2 and 3 "lost" upstream): the
  // cumulative ack freezes at 2, but each ACK must still echo the segment it
  // acknowledges so a non-retransmitting source can count deliveries and
  // infer the gap.
  for (std::uint64_t seq : {0ull, 1ull, 4ull}) {
    w.sim.schedule_at(0.01 * static_cast<double>(seq + 1), [&w, seq] {
      Packet p;
      p.flow = 7;
      p.src = w.client->addr();
      p.dst = w.server->addr();
      p.type = PacketType::kData;
      p.size_bytes = 1500;
      p.seq = seq;
      p.sent_time = w.sim.now();
      w.net.next_hop(w.client->id(), p.dst)->send(std::move(p));
    });
  }
  w.sim.run_until(1.0);
  ASSERT_EQ(col.pkts.size(), 3u);
  EXPECT_EQ(col.pkts[0].seq, 0u);
  EXPECT_EQ(col.pkts[1].seq, 1u);
  EXPECT_EQ(col.pkts[2].seq, 4u);  // the echo jumps: seqs 2..3 were lost
  EXPECT_EQ(col.pkts[2].ack, 2u);  // while the cumulative ack stays frozen
}

// --- AdaptiveShrewSource ---------------------------------------------------

TEST(AdaptiveShrewSource, GrowsDutyWhenNothingClips) {
  World w;
  AdaptiveShrewConfig cfg;
  cfg.cbr.flow = 1;
  cfg.cbr.dst = w.server->addr();
  cfg.cbr.rate = mbps(2);
  cfg.duty = 0.1;
  AdaptiveShrewSource src(&w.sim, w.client, cfg);
  src.start_at(0.0);
  w.sim.run_until(10.0);
  // Loss-free epochs: the duty search bisects up toward its ceiling.
  EXPECT_EQ(src.drop_events(), 0u);
  EXPECT_GT(src.duty(), 0.1);
  EXPECT_GT(src.adaptations(), 0);
}

TEST(AdaptiveShrewSource, BacksOffDutyUnderPersistentClipping) {
  // Bottleneck well under the average rate, with a queue too short to absorb
  // a burst: every epoch at a meaningful duty is lossy.
  World w(mbps(0.25), /*bottleneck_queue=*/10);
  AdaptiveShrewConfig cfg;
  cfg.cbr.flow = 1;
  cfg.cbr.dst = w.server->addr();
  cfg.cbr.rate = mbps(2);
  cfg.duty = 0.25;
  AdaptiveShrewSource src(&w.sim, w.client, cfg);
  src.start_at(0.0);
  w.sim.run_until(15.0);
  // Seq-echo gaps report the clipping; every epoch is lossy, so the duty
  // contracts multiplicatively toward its floor.
  EXPECT_GT(src.drop_events(), 0u);
  EXPECT_LT(src.duty(), 0.1);
  EXPECT_GE(src.period(), cfg.min_period);
  EXPECT_LE(src.period(), cfg.max_period);
}

// --- DutyCycleSource -------------------------------------------------------

TEST(DutyCycleSource, StaysActiveWhileServiced) {
  World w;
  DutyCycleConfig cfg;
  cfg.cbr.flow = 1;
  cfg.cbr.dst = w.server->addr();
  cfg.cbr.rate = mbps(2);
  DutyCycleSource src(&w.sim, w.client, cfg);
  src.start_at(0.0);
  w.sim.run_until(10.0);
  EXPECT_FALSE(src.quiet());
  EXPECT_EQ(src.latch_detections(), 0);
  EXPECT_DOUBLE_EQ(src.quiet_estimate(), cfg.quiet_base);
}

TEST(DutyCycleSource, GoesQuietWhenStarvedAndDoublesOnRelapse) {
  World w;
  DutyCycleConfig cfg;
  cfg.cbr.flow = 1;
  cfg.cbr.dst = w.server->addr();
  cfg.cbr.rate = mbps(2);
  cfg.quiet_base = 0.5;
  DutyCycleSource src(&w.sim, w.client, cfg);
  src.start_at(0.0);
  // Serve normally for 1s (the self-check clock anchors to first feedback),
  // then starve: ACKs stop while the blast continues.
  w.sim.schedule_at(1.0, [&w] { w.gate.open = false; });
  w.sim.run_until(1.0);
  EXPECT_FALSE(src.quiet());
  w.sim.run_until(8.0);
  // Starved within the relapse window of every wake: each detection doubles
  // the quiet-length estimate (capped), so by now it must exceed the base.
  EXPECT_GE(src.latch_detections(), 2);
  EXPECT_GT(src.quiet_estimate(), cfg.quiet_base);
  EXPECT_LE(src.quiet_estimate(), cfg.quiet_max);
}

// --- ProbingCovertSource ---------------------------------------------------

TEST(ProbingCovertSource, FlowPoolIsStatic) {
  World w;
  ProbingCovertConfig cfg;
  cfg.first_flow = 40;
  cfg.dsts = {w.server->addr()};
  cfg.rate = mbps(1);
  cfg.active_flows = 3;
  cfg.pool = 9;
  ProbingCovertSource src(&w.sim, w.client, cfg);
  const auto pool = src.flow_pool();
  ASSERT_EQ(pool.size(), 9u);
  EXPECT_EQ(pool.front(), 40u);
  EXPECT_EQ(pool.back(), 48u);
  EXPECT_EQ(src.active_count(), 3);
}

TEST(ProbingCovertSource, NoRotationWhileAllFlowsServiced) {
  World w;
  ProbingCovertConfig cfg;
  cfg.first_flow = 40;
  cfg.dsts = {w.server->addr()};
  cfg.rate = mbps(1);
  cfg.active_flows = 3;
  cfg.pool = 9;
  ProbingCovertSource src(&w.sim, w.client, cfg);
  src.start_at(0.0);
  w.sim.run_until(8.0);
  EXPECT_GT(src.packets_sent(), 0u);
  EXPECT_EQ(src.rotations(), 0);
}

TEST(ProbingCovertSource, RotatesAwayFromStarvedFlows) {
  // Two destinations: one serves data, the other completes handshakes but
  // black-holes data — its flows deliver nothing and must be rotated out.
  Simulator sim;
  Network net{&sim};
  Host* client = net.add_host("c", 1);
  Router* r = net.add_router("r", 2);
  Host* s_good = net.add_host("sg", 3);
  Host* s_dead = net.add_host("sd", 4);
  net.connect(client, r, mbps(100), 0.001);
  net.connect(r, s_good, mbps(100), 0.001);
  net.connect(r, s_dead, mbps(100), 0.001);
  net.build_routes();
  TcpSink sink_good(&sim, s_good);
  TcpSink sink_dead(&sim, s_dead);
  GateSink gate;
  gate.inner = &sink_dead;
  gate.open = false;
  gate.syn_only = true;  // handshakes succeed, data vanishes
  s_dead->set_default_agent(&gate);

  ProbingCovertConfig cfg;
  cfg.first_flow = 40;
  cfg.dsts = {s_good->addr(), s_dead->addr()};
  cfg.rate = mbps(1);
  cfg.active_flows = 2;
  cfg.pool = 10;
  cfg.probe_interval = 0.5;
  ProbingCovertSource src(&sim, client, cfg);
  src.start_at(0.0);
  sim.run_until(10.0);
  EXPECT_GT(src.rotations(), 0);
  EXPECT_EQ(src.active_count(), 2);
}

}  // namespace
}  // namespace floc
