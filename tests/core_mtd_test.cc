#include "core/mtd_tracker.h"

#include <gtest/gtest.h>

#include <cmath>

namespace floc {
namespace {

TEST(MtdTracker, InfiniteWithoutDrops) {
  MtdTracker t(1.0);
  EXPECT_TRUE(std::isinf(t.mtd(10.0)));
  EXPECT_EQ(t.drops_in_window(10.0), 0u);
}

TEST(MtdTracker, WindowOverDropsEqIV4) {
  MtdTracker t(2.0);
  t.record_drop(0.5);
  t.record_drop(1.0);
  t.record_drop(1.5);
  t.record_drop(2.0);
  // MTD = window / drops = 2.0 / 4.
  EXPECT_DOUBLE_EQ(t.mtd(2.0), 0.5);
}

TEST(MtdTracker, OldDropsAgeOut) {
  MtdTracker t(1.0);
  t.record_drop(0.0);
  t.record_drop(0.5);
  EXPECT_EQ(t.drops_in_window(0.9), 2u);
  EXPECT_EQ(t.drops_in_window(1.2), 1u);  // drop at 0.0 expired
  EXPECT_EQ(t.drops_in_window(2.0), 0u);
  EXPECT_TRUE(std::isinf(t.mtd(2.0)));
}

TEST(MtdTracker, HigherDropRateLowerMtd) {
  MtdTracker slow(1.0), fast(1.0);
  for (int i = 0; i < 2; ++i) slow.record_drop(0.1 * i + 0.5);
  for (int i = 0; i < 20; ++i) fast.record_drop(0.04 * i + 0.1);
  EXPECT_GT(slow.mtd(1.0), fast.mtd(1.0));
}

TEST(MtdTracker, AttackFlowMtdScalesInverselyWithRate) {
  // A flow at alpha times fair rate accrues ~alpha times more drops, so its
  // MTD is ~1/alpha of the reference (Section IV-B.2).
  const double window = 1.0;
  MtdTracker fair(window), attack(window);
  const int fair_drops = 4;
  const int alpha = 5;
  for (int i = 0; i < fair_drops; ++i)
    fair.record_drop(i * window / fair_drops);
  for (int i = 0; i < fair_drops * alpha; ++i)
    attack.record_drop(i * window / (fair_drops * alpha));
  EXPECT_NEAR(fair.mtd(window) / attack.mtd(window), alpha, 1e-9);
}

TEST(MtdTracker, MaxRecordsBounded) {
  MtdTracker t(100.0, /*max_records=*/16);
  for (int i = 0; i < 1000; ++i) t.record_drop(i * 0.01);
  EXPECT_LE(t.drops_in_window(10.0), 16u);
  EXPECT_EQ(t.total_drops(), 1000u);
}

TEST(MtdTracker, WindowChangeAffectsMeasure) {
  MtdTracker t(4.0);
  for (int i = 0; i < 4; ++i) t.record_drop(i + 0.5);
  EXPECT_DOUBLE_EQ(t.mtd(4.0), 1.0);
  t.set_window(2.0);
  // Only drops at 2.5, 3.5 remain in window.
  EXPECT_DOUBLE_EQ(t.mtd(4.0), 1.0);
  t.set_window(1.0);
  EXPECT_DOUBLE_EQ(t.mtd(4.0), 1.0);  // drop at 3.5
}

}  // namespace
}  // namespace floc
