#include "baselines/pushback.h"

#include <gtest/gtest.h>

namespace floc {
namespace {

PushbackConfig small_cfg() {
  PushbackConfig cfg;
  cfg.buffer_packets = 50;
  cfg.link_bandwidth = mbps(10);  // ~833 full pkts/s
  cfg.aggregate_prefix_len = 1;
  cfg.interval = 0.2;
  cfg.congestion_threshold = 0.05;
  return cfg;
}

Packet pkt(FlowId f, const PathId& path) {
  Packet p;
  p.flow = f;
  p.path = path;
  return p;
}

TEST(PushbackQueue, NoThrottlingWithoutCongestion) {
  PushbackQueue q(small_cfg());
  for (int i = 0; i < 400; ++i) {
    q.enqueue(pkt(1, PathId::of({1})), i * 0.01);
    q.dequeue(i * 0.01);
  }
  EXPECT_FALSE(q.throttling_active());
}

TEST(PushbackQueue, ThrottlesDominantAggregateUnderFlood) {
  PushbackQueue q(small_cfg());
  double t = 0.0;
  double next_service = 0.0;
  for (int i = 0; i < 30000; ++i) {
    t = i * 0.0002;  // 5000 pkt/s from the attack aggregate
    q.enqueue(pkt(100, PathId::of({6, 66})), t);
    if (i % 25 == 0) q.enqueue(pkt(1, PathId::of({1, 11})), t);  // light
    while (next_service <= t) {
      q.dequeue(next_service);
      next_service += 1.0 / 833.0;
    }
  }
  EXPECT_TRUE(q.throttling_active());
  // The attack aggregate is limited; the light aggregate is not.
  EXPECT_GE(q.limit_for(PathId::of({6, 66})), 0.0);
  EXPECT_LT(q.limit_for(PathId::of({1, 11})), 0.0);
  EXPECT_GT(q.drops(), 0u);
}

TEST(PushbackQueue, AggregateClusteringByPrefix) {
  PushbackConfig cfg = small_cfg();
  cfg.aggregate_prefix_len = 1;
  PushbackQueue q(cfg);
  double t = 0.0;
  double next_service = 0.0;
  // Two leaf paths sharing first-hop {6} flood together.
  for (int i = 0; i < 30000; ++i) {
    t = i * 0.0002;
    q.enqueue(pkt(100 + (i % 2), PathId::of({6, static_cast<AsNumber>(60 + i % 2)})), t);
    while (next_service <= t) {
      q.dequeue(next_service);
      next_service += 1.0 / 833.0;
    }
  }
  // Both leaves map to the same rate-limited aggregate.
  EXPECT_TRUE(q.throttling_active());
  EXPECT_DOUBLE_EQ(q.limit_for(PathId::of({6, 60})),
                   q.limit_for(PathId::of({6, 61})));
}

TEST(PushbackQueue, LimitsReleasedAfterCalm) {
  PushbackConfig cfg = small_cfg();
  cfg.limiter_timeout = 1.0;
  PushbackQueue q(cfg);
  double t = 0.0;
  double next_service = 0.0;
  for (int i = 0; i < 30000; ++i) {
    t = i * 0.0002;
    q.enqueue(pkt(100, PathId::of({6})), t);
    while (next_service <= t) {
      q.dequeue(next_service);
      next_service += 1.0 / 833.0;
    }
  }
  ASSERT_TRUE(q.throttling_active());
  // Calm traffic for several seconds: limiters must clear.
  for (int i = 0; i < 100; ++i) {
    t += 0.1;
    q.enqueue(pkt(1, PathId::of({1})), t);
    q.dequeue(t);
  }
  EXPECT_FALSE(q.throttling_active());
}

}  // namespace
}  // namespace floc
