// FlocQueue defense-event journaling: a scripted congestion -> flooding ->
// recovery scenario must land in the journal as mode transitions in exact
// order, key rotation / re-issue / reboot / recovery events included, and
// every drop must carry its DropReason.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/floc_queue.h"
#include "telemetry/telemetry.h"

namespace floc {
namespace {

FlocConfig small_cfg() {
  FlocConfig cfg;
  cfg.link_bandwidth = mbps(10);
  cfg.buffer_packets = 100;  // Q_min = 20, first-control Q_max = 30
  cfg.enable_aggregation = false;
  return cfg;
}

Packet syn(FlowId flow, const PathId& path) {
  Packet p;
  p.flow = flow;
  p.src = static_cast<HostAddr>(flow);
  p.dst = 99;
  p.path = path;
  p.type = PacketType::kSyn;
  return p;
}

TEST(FlocJournal, ScriptedCongestionFloodingRecoveryInOrder) {
  FlocQueue q(small_cfg());
  telemetry::Telemetry tel;
  q.attach_telemetry(&tel);

  const PathId path = PathId::of({1, 2});
  // Grow the queue through congested (q > 20) into flooding (q > 30).
  for (int i = 0; i < 35; ++i) {
    ASSERT_TRUE(q.enqueue(syn(static_cast<FlowId>(i + 1), path), 0.001 * i));
  }
  EXPECT_EQ(q.mode(), FlocQueue::Mode::kFlooding);
  // Drain back out: flooding -> congested (q = 30), congested ->
  // uncongested (q = 20).
  while (q.packet_count() > 0) q.dequeue(0.1);

  const auto trans = tel.journal.of_kind(telemetry::EventKind::kModeTransition);
  ASSERT_EQ(trans.size(), 4u);
  const char* expected[] = {
      "uncongested->congested", "congested->flooding",
      "flooding->congested", "congested->uncongested"};
  const std::uint64_t expected_mode[] = {1, 2, 1, 0};
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(trans[i]->detail.substr(0, trans[i]->detail.find(' ')),
              expected[i])
        << "transition " << i << ": " << trans[i]->detail;
    EXPECT_EQ(trans[i]->a, expected_mode[i]);
    // The triggering queue measurement rides along.
    EXPECT_NE(trans[i]->detail.find("q_min=20"), std::string::npos);
    if (i > 0) {
      EXPECT_LT(trans[i - 1]->seq, trans[i]->seq);
      EXPECT_LE(trans[i - 1]->time, trans[i]->time);
    }
  }
  EXPECT_EQ(tel.journal.count(telemetry::EventKind::kModeTransition), 4u);
}

TEST(FlocJournal, RotationReissueRebootRecoveryEvents) {
  FlocQueue q(small_cfg());
  telemetry::Telemetry tel;
  q.attach_telemetry(&tel);
  const PathId path = PathId::of({1, 2});

  // Establish a flow, then rotate the secret: a data packet carrying an
  // unverifiable capability is re-stamped during the grace window.
  ASSERT_TRUE(q.enqueue(syn(1, path), 0.0));
  q.dequeue(0.01);
  q.rotate_secret(0x0DDB1750DDB175ULL, 1.0);
  Packet d;
  d.flow = 1;
  d.src = 1;
  d.dst = 99;
  d.path = path;
  d.type = PacketType::kData;
  d.cap0 = 0x1234;  // nonzero but invalid under either secret
  d.cap1 = 0x5678;
  q.enqueue(std::move(d), 1.1);  // within the one-interval grace window
  EXPECT_EQ(tel.journal.count(telemetry::EventKind::kKeyRotation), 1u);
  EXPECT_EQ(tel.journal.count(telemetry::EventKind::kCapReissue),
            q.cap_reissues());
  EXPECT_GE(q.cap_reissues(), 1u);

  q.reboot(2.0);
  EXPECT_EQ(tel.journal.count(telemetry::EventKind::kReboot), 1u);
  EXPECT_EQ(tel.journal.count(telemetry::EventKind::kRecoveryEnd), 0u);
  EXPECT_TRUE(q.in_recovery(2.1));
  q.run_control(3.0);  // past recovery_until_ = 2.0 + 2 * 0.25
  EXPECT_EQ(tel.journal.count(telemetry::EventKind::kRecoveryEnd), 1u);
}

TEST(FlocJournal, AttackLatchJournaledWithTriggeringMtd) {
  FlocConfig cfg = small_cfg();
  cfg.buffer_packets = 60;
  cfg.control_interval = 0.05;
  FlocQueue q(cfg);
  telemetry::Telemetry tel;
  tel.journal.set_enabled(telemetry::EventKind::kDrop, false);
  q.attach_telemetry(&tel);

  // The core_floc_queue_test harness: an over-rate path against a
  // conformant one, service at link rate, until the hysteresis latches.
  const PathId good = PathId::of({1, 10});
  const PathId bad = PathId::of({2, 20});
  const double dt = 1.0 / 2500.0;
  double next_service = 0.0;
  double t = 0.0;
  for (int i = 0; i < 12500; ++i) {
    t = i * dt;
    Packet a;
    a.flow = 100;
    a.src = 2;
    a.dst = 99;
    a.path = bad;
    a.type = PacketType::kData;
    q.enqueue(std::move(a), t);
    if (i % 15 == 0) {
      Packet g;
      g.flow = 1;
      g.src = 1;
      g.dst = 99;
      g.path = good;
      g.type = PacketType::kData;
      q.enqueue(std::move(g), t);
    }
    while (next_service <= t) {
      q.dequeue(next_service);
      next_service += 1.0 / 833.0;
    }
  }
  q.run_control(t + 0.01);
  ASSERT_TRUE(q.is_attack_path(bad));

  const auto latches = tel.journal.of_kind(telemetry::EventKind::kAttackLatch);
  ASSERT_GE(latches.size(), 1u);
  // The latched aggregate is identified by its path string, and the
  // triggering per-flow MTD measurement rides in `value`.
  EXPECT_EQ(latches[0]->component, "floc");
  EXPECT_EQ(latches[0]->detail, bad.to_string());
  EXPECT_GT(latches[0]->value, 0.0);
  // Latches and releases alternate per aggregate; the bad path never
  // released while the flood kept running.
  EXPECT_EQ(tel.journal.count(telemetry::EventKind::kAttackRelease), 0u);
  // Registry view agrees.
  EXPECT_DOUBLE_EQ(tel.registry.value("floc.paths.attack"), 1.0);
}

TEST(FlocJournal, EveryDropJournaledWithReason) {
  FlocQueue q(small_cfg());
  telemetry::Telemetry tel;
  q.attach_telemetry(&tel);
  const PathId path = PathId::of({3});
  for (int i = 0; i < 300; ++i) {
    q.enqueue(syn(static_cast<FlowId>(i + 1), path), 0.0001 * i);
  }
  EXPECT_GT(q.drops(), 0u);
  EXPECT_EQ(tel.journal.count(telemetry::EventKind::kDrop), q.drops());
  // Journaled drop events carry the DropReason ordinal in `a`.
  std::uint64_t queue_full = 0;
  for (const auto* e : tel.journal.of_kind(telemetry::EventKind::kDrop)) {
    if (e->a == static_cast<std::uint64_t>(DropReason::kQueueFull))
      ++queue_full;
  }
  EXPECT_EQ(queue_full, q.drops_by_reason(DropReason::kQueueFull));
}

TEST(FlocJournal, GaugesExposeModeAndDropBreakdown) {
  FlocQueue q(small_cfg());
  telemetry::Telemetry tel;
  q.attach_telemetry(&tel);
  const PathId path = PathId::of({4});
  for (int i = 0; i < 25; ++i) {
    q.enqueue(syn(static_cast<FlowId>(i + 1), path), 0.001 * i);
  }
  EXPECT_DOUBLE_EQ(tel.registry.value("floc.mode"),
                   static_cast<double>(static_cast<int>(q.mode())));
  EXPECT_DOUBLE_EQ(tel.registry.value("floc.queue.packets"),
                   static_cast<double>(q.packet_count()));
  EXPECT_DOUBLE_EQ(tel.registry.value("floc.drops.queue-full"),
                   static_cast<double>(q.drops_by_reason(DropReason::kQueueFull)));
  EXPECT_DOUBLE_EQ(tel.registry.value("floc.queue.q_min"), 20.0);
}

TEST(FlocJournal, DetachStopsJournaling) {
  FlocQueue q(small_cfg());
  telemetry::Telemetry tel;
  q.attach_telemetry(&tel);
  const PathId path = PathId::of({5});
  for (int i = 0; i < 25; ++i) {
    q.enqueue(syn(static_cast<FlowId>(i + 1), path), 0.001 * i);
  }
  const std::uint64_t before = tel.journal.total();
  EXPECT_GT(before, 0u);
  q.attach_telemetry(nullptr);
  for (int i = 25; i < 40; ++i) {
    q.enqueue(syn(static_cast<FlowId>(i + 1), path), 0.001 * i);
  }
  EXPECT_EQ(tel.journal.total(), before);
}

}  // namespace
}  // namespace floc
