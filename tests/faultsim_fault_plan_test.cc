#include "faultsim/fault_plan.h"

#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "netsim/drop_tail.h"
#include "netsim/network.h"

namespace floc {
namespace {

struct Collector : Agent {
  std::vector<Packet> got;
  void on_packet(Packet&& p) override { got.push_back(std::move(p)); }
};

Packet data_to(HostAddr dst, int bytes = 1000) {
  Packet p;
  p.flow = 1;
  p.dst = dst;
  p.type = PacketType::kData;
  p.size_bytes = bytes;
  return p;
}

// A link flap mid-transfer must not leak packets: everything offered is
// either delivered, dropped by the queue discipline, or counted against the
// downed link — and delivery resumes once the link recovers.
TEST(FaultPlan, LinkFlapConservesPackets) {
  Simulator sim;
  Network net(&sim);
  Host* a = net.add_host("a", 1);
  Host* b = net.add_host("b", 2);
  // 1000 B at 80 kbps = one packet per 0.1 s, matching the offered rate.
  auto d = net.connect(a, b, kbps(80), 0.0,
                       std::make_unique<DropTailQueue>(5));
  net.build_routes();
  Collector sink;
  b->set_default_agent(&sink);

  const int offered = 30;
  for (int i = 0; i < offered; ++i) {
    sim.schedule_at(0.1 * i, [&net, a, b] {
      net.next_hop(a->id(), b->addr())->send(data_to(b->addr()));
    });
  }
  // Down at t=1.05 — mid-serialization of the packet sent at t=1.0 — and
  // back up at t=1.55. The five packets offered meanwhile are lost.
  FaultPlan plan;
  plan.add_link_flap(d.ab, 1.05, 1.55);
  plan.install(&sim);
  EXPECT_EQ(plan.event_count(), 2u);

  sim.run();

  EXPECT_TRUE(d.ab->up());
  EXPECT_EQ(d.ab->down_drops(), 5u);
  EXPECT_TRUE(d.ab->queue().empty());
  // Conservation: delivered + link-down drops + queue drops == offered.
  EXPECT_EQ(sink.got.size() + d.ab->down_drops() + d.ab->queue().drops(),
            static_cast<std::size_t>(offered));
  // The in-flight packet at failure time still delivered, and transmission
  // resumed after recovery (the t=1.6..2.9 packets all arrive).
  EXPECT_EQ(sink.got.size(), 25u);
  EXPECT_GT(sim.now(), 2.9);
}

TEST(FaultPlan, DrainPolicyLosesBufferedPackets) {
  Simulator sim;
  Network net(&sim);
  Host* a = net.add_host("a", 1);
  Host* b = net.add_host("b", 2);
  auto d = net.connect(a, b, kbps(80), 0.0,
                       std::make_unique<DropTailQueue>(10));
  net.build_routes();
  Collector sink;
  b->set_default_agent(&sink);

  // Eight packets back-to-back: one serializing, seven buffered.
  for (int i = 0; i < 8; ++i) d.ab->send(data_to(b->addr()));

  FaultPlan plan;
  plan.add_link_flap(d.ab, 0.05, 0.5, Link::DownQueuePolicy::kDrain);
  plan.install(&sim);
  // One more offered while down, one after recovery.
  sim.schedule_at(0.2, [&] { d.ab->send(data_to(b->addr())); });
  sim.schedule_at(0.6, [&] { d.ab->send(data_to(b->addr())); });
  sim.run();

  // In-flight packet delivers; the 7 buffered drain, the 1 offered while
  // down drops, the post-recovery one delivers.
  EXPECT_EQ(d.ab->down_drops(), 8u);
  EXPECT_EQ(sink.got.size(), 2u);
}

TEST(FaultPlan, CorruptionWindowFlipsCapabilityBits) {
  Simulator sim;
  Network net(&sim);
  Host* a = net.add_host("a", 1);
  Host* b = net.add_host("b", 2);
  auto d = net.connect(a, b, mbps(10), 0.0);
  net.build_routes();
  Collector sink;
  b->set_default_agent(&sink);

  const std::uint64_t c0 = 0x1111222233334444ULL;
  const std::uint64_t c1 = 0x5555666677778888ULL;
  auto send_capped = [&](PacketType type) {
    Packet p = data_to(b->addr());
    p.type = type;
    p.cap0 = c0;
    p.cap1 = c1;
    d.ab->send(std::move(p));
  };

  FaultPlan plan;
  plan.add_corruption_window(d.ab, 0.0, 1.0, /*per_packet_prob=*/1.0);
  plan.install(&sim);
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(0.1 * i, [&] { send_capped(PacketType::kData); });
  }
  // Control traffic passes untouched even inside the window; data after the
  // window is untouched too.
  sim.schedule_at(0.6, [&] { send_capped(PacketType::kAck); });
  sim.schedule_at(1.5, [&] { send_capped(PacketType::kData); });
  sim.run();

  EXPECT_EQ(plan.corrupted_packets(), 5u);
  ASSERT_EQ(sink.got.size(), 7u);
  int corrupted = 0;
  for (const Packet& p : sink.got) {
    const bool tampered = p.cap0 != c0 || p.cap1 != c1;
    if (tampered) {
      ++corrupted;
      EXPECT_EQ(p.type, PacketType::kData);
      // Exactly one bit flipped across the two words.
      EXPECT_EQ(std::popcount(p.cap0 ^ c0) + std::popcount(p.cap1 ^ c1), 1);
    }
  }
  EXPECT_EQ(corrupted, 5);
}

TEST(FaultPlan, RecordsPlannedEventsInOrderAdded) {
  Simulator sim;
  Network net(&sim);
  Host* a = net.add_host("a", 1);
  Host* b = net.add_host("b", 2);
  auto d = net.connect(a, b, mbps(1), 0.0);
  net.build_routes();

  bool fired = false;
  FaultPlan plan;
  plan.add_link_flap(d.ab, 2.0, 3.0);
  plan.add_event(1.0, [&] { fired = true; }, "probe");
  ASSERT_EQ(plan.event_count(), 3u);
  EXPECT_EQ(plan.events()[0].label, "link-down");
  EXPECT_EQ(plan.events()[1].label, "link-up");
  EXPECT_EQ(plan.events()[2].label, "probe");
  EXPECT_DOUBLE_EQ(plan.events()[2].time, 1.0);

  plan.install(&sim);
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_TRUE(d.ab->up());
}

TEST(FaultPlan, ActivationsJournaledAtFireTime) {
  Simulator sim;
  telemetry::EventJournal journal;
  FaultPlan plan;
  plan.set_journal(&journal);
  int fired = 0;
  plan.add_event(1.0, [&] { ++fired; }, "cut-fiber");
  plan.add_event(2.5, [&] { ++fired; }, "restore-fiber");
  plan.install(&sim);
  EXPECT_EQ(journal.total(), 0u);  // journaled on activation, not install
  sim.run();

  EXPECT_EQ(fired, 2);
  const auto events = journal.of_kind(telemetry::EventKind::kFault);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0]->time, 1.0);
  EXPECT_EQ(events[0]->component, "fault-plan");
  EXPECT_EQ(events[0]->detail, "cut-fiber");
  EXPECT_DOUBLE_EQ(events[1]->time, 2.5);
  EXPECT_EQ(events[1]->detail, "restore-fiber");
}

TEST(Link, UtilizationEmptyWindowIsZero) {
  Simulator sim;
  Network net(&sim);
  Host* a = net.add_host("a", 1);
  Host* b = net.add_host("b", 2);
  auto d = net.connect(a, b, mbps(8), 0.0);
  net.build_routes();
  Collector sink;
  b->set_default_agent(&sink);
  d.ab->send(data_to(b->addr()));
  sim.run();
  // Zero-width and inverted windows must not divide by zero.
  EXPECT_DOUBLE_EQ(d.ab->utilization(0.5, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.ab->utilization(1.0, 0.5), 0.0);
}

}  // namespace
}  // namespace floc
