#include "inetsim/tick_sim.h"

#include <gtest/gtest.h>

#include "inetsim/inet_experiment.h"
#include "topology/skitter_gen.h"

namespace floc {
namespace {

struct SmallWorld {
  AsGraph graph;
  SourcePlacement placement;

  SmallWorld() {
    SkitterConfig s;
    s.as_count = 200;
    s.seed = 9;
    graph = generate_skitter_tree(s);
    PlacementConfig p;
    p.legit_sources = 200;
    p.legit_ases = 30;
    p.attack_sources = 2000;
    p.attack_ases = 15;
    p.seed = 10;
    placement = place_sources(graph, p);
  }
};

TickConfig fast_cfg(TickPolicy policy) {
  TickConfig t;
  t.policy = policy;
  t.bottleneck_capacity = 400;
  t.internal_capacity = 1600;
  t.ticks = 600;
  t.warmup_ticks = 150;
  t.bot_rate = 0.5;  // 2000 * 0.5 = 1000 pkts/tick >> 400 capacity
  return t;
}

TEST(TickSim, NoDefenseStarvesLegitimateFlows) {
  SmallWorld w;
  TickSim sim(w.graph, w.placement, fast_cfg(TickPolicy::kNoDefense));
  const TickResults r = sim.run();
  EXPECT_GT(r.utilization, 0.9);  // link saturated
  // Attack traffic dominates; legit flows get crumbs.
  EXPECT_GT(r.attack_frac, 4.0 * (r.legit_legit_frac + r.legit_attack_frac));
}

TEST(TickSim, FairPriorityHelpsLegitFlows) {
  SmallWorld w;
  TickSim nd(w.graph, w.placement, fast_cfg(TickPolicy::kNoDefense));
  TickSim ff(w.graph, w.placement, fast_cfg(TickPolicy::kFairPriority));
  const TickResults rnd = nd.run();
  const TickResults rff = ff.run();
  EXPECT_GT(rff.legit_legit_frac + rff.legit_attack_frac,
            rnd.legit_legit_frac + rnd.legit_attack_frac);
}

TEST(TickSim, FlocBeatsFairPriority) {
  SmallWorld w;
  TickSim ff(w.graph, w.placement, fast_cfg(TickPolicy::kFairPriority));
  TickSim fl(w.graph, w.placement, fast_cfg(TickPolicy::kFloc));
  const TickResults rff = ff.run();
  const TickResults rfl = fl.run();
  EXPECT_GT(rfl.legit_legit_frac, rff.legit_legit_frac);
}

TEST(TickSim, FlocLegitWindowsGrow) {
  SmallWorld w;
  TickSim nd(w.graph, w.placement, fast_cfg(TickPolicy::kNoDefense));
  TickSim fl(w.graph, w.placement, fast_cfg(TickPolicy::kFloc));
  const TickResults rnd = nd.run();
  const TickResults rfl = fl.run();
  // Under FLoc, legitimate TCP windows should be healthier than under ND.
  EXPECT_GT(rfl.mean_legit_window, rnd.mean_legit_window);
}

TEST(TickSim, AggregationBoundsIdentifierCount) {
  SmallWorld w;
  TickConfig cfg = fast_cfg(TickPolicy::kFloc);
  // Budget above the legitimate-AS count (~30 + overlap) so attack-path
  // aggregation alone can satisfy it (Section IV-C.1 constraint).
  cfg.guaranteed_paths = 38;
  TickSim sim(w.graph, w.placement, cfg);
  const TickResults r = sim.run();
  EXPECT_LE(r.aggregate_count, 38);
  EXPECT_GT(r.aggregate_count, 0);
}

TEST(TickSim, AggregationFavorsLegitPaths) {
  SmallWorld w;
  TickConfig na = fast_cfg(TickPolicy::kFloc);
  TickConfig agg = fast_cfg(TickPolicy::kFloc);
  agg.guaranteed_paths = 12;
  const TickResults rna = TickSim(w.graph, w.placement, na).run();
  const TickResults ragg = TickSim(w.graph, w.placement, agg).run();
  // Aggregating attack ASes returns bandwidth to legitimate paths.
  EXPECT_GE(ragg.legit_legit_frac, 0.9 * rna.legit_legit_frac);
}

TEST(TickSim, Deterministic) {
  SmallWorld w;
  const TickResults a = TickSim(w.graph, w.placement, fast_cfg(TickPolicy::kFloc)).run();
  const TickResults b = TickSim(w.graph, w.placement, fast_cfg(TickPolicy::kFloc)).run();
  EXPECT_EQ(a.delivered_legit_legit, b.delivered_legit_legit);
  EXPECT_EQ(a.delivered_attack, b.delivered_attack);
}

TEST(InetExperiment, RunsAllFivePolicies) {
  InetExperimentConfig cfg;
  cfg.scale = 0.02;
  cfg.ticks = 500;
  const auto rows = run_inet_experiment(cfg);
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].label, "ND");
  EXPECT_EQ(rows[1].label, "FF");
  EXPECT_EQ(rows[2].label, "NA");
  for (const auto& r : rows) {
    EXPECT_GE(r.results.utilization, 0.0);
    EXPECT_LE(r.results.utilization, 1.02);
  }
}

TEST(InetExperiment, TopologyStatsSane) {
  InetExperimentConfig cfg;
  cfg.scale = 0.05;
  const TopologyStats st = topology_stats(cfg);
  EXPECT_GT(st.ases, 100);
  EXPECT_GT(st.attack_ases, 5);
  EXPECT_GT(st.bot_concentration_top17pct, 0.4);
  EXPECT_GT(st.legit_in_attack_ases, 0);
}

}  // namespace
}  // namespace floc
