// Adaptive-adversary sweep determinism (ISSUE 6, satellite e).
//
// Runs the three closed-loop attack variants on the Fig. 5 tree with every
// hardening layer enabled — jittered measurement intervals, hash-drawn
// bucket dips with probation audits, exponential-backoff release, and the
// offender blacklist — through the ScenarioRunner. All of the hardening
// randomness is drawn from counter/key hashes rather than the shared RNG
// stream, so the parallel sweep must stay byte-identical to the serial one:
// journal dumps and goodput totals may not depend on thread scheduling.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "runner/scenario_runner.h"
#include "telemetry/telemetry.h"
#include "topology/tree_scenario.h"
#include "transport/flow_monitor.h"
#include "util/seed.h"
#include "util/siphash.h"

namespace floc {
namespace {

constexpr std::uint64_t kMaster = 20100604;
constexpr SipKey kHashKey{0x464C6F6341444150ULL, 0x5357454550484153ULL};

std::uint64_t hash_bytes(const std::string& s) {
  return siphash24(kHashKey,
                   std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(s.data()),
                       s.size()));
}

struct CaseResult {
  std::uint64_t seed = 0;
  std::uint64_t journal_hash = 0;
  std::uint64_t journal_events = 0;
  double legit_bytes = 0.0;
  double attack_bytes = 0.0;
};

CaseResult run_case(AttackType attack, std::uint64_t seed) {
  TreeScenarioConfig cfg;
  cfg.scale = 0.05;
  cfg.duration = 12.0;
  cfg.measure_start = 6.0;
  cfg.measure_end = 12.0;
  cfg.scheme = DefenseScheme::kFloc;
  cfg.attack = attack;
  cfg.attack_rate = mbps(2.0);
  cfg.seed = seed;
  // The full hardening stack, as the ablation bench enables it.
  cfg.floc.interval_jitter = 0.15;
  cfg.floc.jitter_dip_prob = 0.4;
  cfg.floc.backoff_release = true;
  cfg.floc.backoff_decay = 10.0;
  cfg.floc.enable_blacklist = true;
  TreeScenario s(cfg);

  telemetry::Telemetry tel;
  s.floc_queue()->attach_telemetry(&tel);
  s.run();

  CaseResult r;
  r.seed = seed;
  const std::string journal = tel.journal.dump();
  r.journal_hash = hash_bytes(journal);
  r.journal_events = tel.journal.total();
  r.legit_bytes = s.monitor().class_cumulative_bytes(
      [](const FlowLabel& l) { return l.cls == FlowClass::kLegitimate; });
  r.attack_bytes = s.monitor().class_cumulative_bytes(FlowMonitor::is_attack);
  return r;
}

std::vector<CaseResult> sweep(int jobs) {
  const AttackType attacks[] = {AttackType::kAdaptiveShrew,
                                AttackType::kDutyCycle,
                                AttackType::kProbingCovert};
  return runner::run_indexed<CaseResult>(jobs, 3, [&](std::size_t i) {
    return run_case(attacks[i],
                    derive_seed(kMaster, i, kSeedStreamTreeScenario));
  });
}

TEST(AdaptiveSweep, HardenedParallelSweepMatchesSerial) {
  const auto serial = sweep(1);
  const auto parallel = sweep(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].seed, parallel[i].seed) << "case " << i;
    EXPECT_EQ(serial[i].journal_hash, parallel[i].journal_hash)
        << "case " << i << ": hardened journal diverged across --jobs";
    EXPECT_EQ(serial[i].journal_events, parallel[i].journal_events);
    EXPECT_EQ(serial[i].legit_bytes, parallel[i].legit_bytes) << "case " << i;
    EXPECT_EQ(serial[i].attack_bytes, parallel[i].attack_bytes)
        << "case " << i;
  }
  // The shrunk cases still exercise the closed loop end to end: traffic
  // flows on both sides and the defense emits events.
  for (const auto& r : serial) {
    EXPECT_GT(r.journal_events, 0u);
    EXPECT_GT(r.legit_bytes, 0u);
  }
}

TEST(AdaptiveSweep, RepeatedParallelSweepsReproduce) {
  const auto first = sweep(4);
  const auto second = sweep(4);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].journal_hash, second[i].journal_hash) << "case " << i;
    EXPECT_EQ(first[i].legit_bytes, second[i].legit_bytes) << "case " << i;
    EXPECT_EQ(first[i].attack_bytes, second[i].attack_bytes) << "case " << i;
  }
}

}  // namespace
}  // namespace floc
