#include "netsim/network.h"

#include <gtest/gtest.h>

#include "netsim/drop_tail.h"

namespace floc {
namespace {

// Minimal agent that remembers what it received.
struct Collector : Agent {
  std::vector<Packet> got;
  void on_packet(Packet&& p) override { got.push_back(std::move(p)); }
};

TEST(Network, PacketCrossesLine) {
  Simulator sim;
  Network net(&sim);
  Host* a = net.add_host("a", 1);
  Router* r = net.add_router("r", 2);
  Host* b = net.add_host("b", 3);
  net.connect(a, r, mbps(10), 0.001);
  net.connect(r, b, mbps(10), 0.001);
  net.build_routes();

  Collector sink;
  b->register_agent(7, &sink);

  Packet p;
  p.flow = 7;
  p.src = a->addr();
  p.dst = b->addr();
  p.size_bytes = 1000;
  net.next_hop(a->id(), b->addr())->send(std::move(p));
  sim.run();

  ASSERT_EQ(sink.got.size(), 1u);
  EXPECT_EQ(sink.got[0].flow, 7u);
  // Two serialization delays (1000B at 10 Mbps = 0.8 ms each) + two
  // propagation delays of 1 ms.
  EXPECT_NEAR(sim.now(), 2 * 0.0008 + 2 * 0.001, 1e-9);
}

TEST(Network, RoutesPickShortestPath) {
  Simulator sim;
  Network net(&sim);
  // a - r1 - r2 - b  and a shortcut a - r3 - b.
  Host* a = net.add_host("a", 1);
  Router* r1 = net.add_router("r1", 2);
  Router* r2 = net.add_router("r2", 3);
  Router* r3 = net.add_router("r3", 4);
  Host* b = net.add_host("b", 5);
  net.connect(a, r1, mbps(10), 0.001);
  net.connect(r1, r2, mbps(10), 0.001);
  net.connect(r2, b, mbps(10), 0.001);
  net.connect(a, r3, mbps(10), 0.001);
  net.connect(r3, b, mbps(10), 0.001);
  net.build_routes();

  // a's next hop to b must be the 2-hop branch via r3.
  Link* hop = net.next_hop(a->id(), b->addr());
  ASSERT_NE(hop, nullptr);
  EXPECT_EQ(hop->to(), r3);
}

TEST(Network, UnroutableReturnsNull) {
  Simulator sim;
  Network net(&sim);
  Host* a = net.add_host("a", 1);
  Host* b = net.add_host("b", 2);  // never connected
  net.connect(a, net.add_router("r", 3), mbps(1), 0.001);
  net.build_routes();
  EXPECT_EQ(net.next_hop(a->id(), b->addr()), nullptr);
}

TEST(Network, HostByAddr) {
  Simulator sim;
  Network net(&sim);
  Host* a = net.add_host("a", 1);
  EXPECT_EQ(net.host_by_addr(a->addr()), a);
  EXPECT_EQ(net.host_by_addr(999), nullptr);
}

TEST(Link, QueueBuildsUnderOverload) {
  Simulator sim;
  Network net(&sim);
  Host* a = net.add_host("a", 1);
  Host* b = net.add_host("b", 2);
  auto d = net.connect(a, b, kbps(80), 0.0,
                       std::make_unique<DropTailQueue>(5));
  net.build_routes();
  Collector sink;
  b->set_default_agent(&sink);

  // 20 packets of 1000 B at a link that serializes one per 0.1 s, queue 5.
  for (int i = 0; i < 20; ++i) {
    Packet p;
    p.flow = 1;
    p.dst = b->addr();
    p.size_bytes = 1000;
    d.ab->send(std::move(p));
  }
  sim.run();
  // 1 in flight + 5 queued survive; the rest drop.
  EXPECT_EQ(sink.got.size(), 6u);
  EXPECT_EQ(d.ab->queue().drops(), 14u);
}

TEST(Link, UtilizationAccounting) {
  Simulator sim;
  Network net(&sim);
  Host* a = net.add_host("a", 1);
  Host* b = net.add_host("b", 2);
  auto d = net.connect(a, b, mbps(8), 0.0);
  net.build_routes();
  Collector sink;
  b->set_default_agent(&sink);
  Packet p;
  p.dst = b->addr();
  p.size_bytes = 1000;  // 1 ms at 8 Mbps
  d.ab->send(std::move(p));
  sim.run();
  EXPECT_EQ(d.ab->bytes_sent(), 1000u);
  EXPECT_NEAR(d.ab->utilization(0.0, 0.001), 1.0, 1e-9);
}

}  // namespace
}  // namespace floc
