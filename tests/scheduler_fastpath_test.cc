// Zero-allocation event engine fast path (ISSUE 10, satellite 3).
//
// Lives in the floc_fastpath_test binary, which replaces global operator
// new/delete with the counting versions (FLOC_DEFINE_COUNTING_ALLOCATOR is
// placed by telemetry_fastpath_test.cc in this same binary). What we pin:
// once the arena and the engine's internal vectors are warm, the
// steady-state schedule_in -> fire cycle performs ZERO heap allocations for
// callbacks that fit the inline buffer — on the wheel engine (the shipping
// default) and on the reference heap engine alike. The inline-capacity
// escape hatch (oversized captures fall back to one heap cell) is exercised
// too, so the zero measurement cannot be the counter failing to count.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "netsim/simulator.h"
#include "telemetry/alloc_counter.h"

namespace floc {
namespace {

using telemetry::ScopedAllocCount;

// Self-rescheduling functor: 32 bytes, trivially inline. Each firing
// schedules the next round until the fuel runs out, so one warm node serves
// the whole run — exactly the steady-state shape of Link's busy/deliver
// chain.
struct Ticker {
  Simulator* sim;
  TimeSec dt;
  std::uint64_t* fuel;
  void operator()() const {
    if (*fuel == 0) return;
    --*fuel;
    sim->schedule_in(dt, Ticker{*this});
  }
};
static_assert(Simulator::Callback::fits_inline<Ticker>());

class SchedulerFastPath : public ::testing::TestWithParam<SimEngine> {};

TEST_P(SchedulerFastPath, SteadyStateScheduleDispatchAllocatesNothing) {
  Simulator sim(GetParam());
  std::uint64_t fuel = 100'000;
  // Warm-up: grows arena chunks, the engines' internal vectors, and the
  // ready heap to their steady footprint. A handful of concurrent tickers
  // at staggered sub-millisecond periods keeps several wheel levels live.
  for (int i = 0; i < 8; ++i) {
    sim.schedule_in(1e-6 * (i + 1),
                    Ticker{&sim, 1e-5 + 3e-6 * i, &fuel});
  }
  sim.run_until(sim.now() + 0.002);
  ASSERT_GT(sim.events_processed(), 100u) << "warm-up did not run";
  ASSERT_GT(fuel, 50'000u) << "warm-up exhausted the fuel";

  ScopedAllocCount guard;
  sim.run_until(sim.now() + 10.0);  // burns the remaining fuel
  EXPECT_EQ(fuel, 0u);
  EXPECT_EQ(guard.allocs(), 0u)
      << to_string(sim.engine())
      << " engine allocated on the steady schedule->fire path";
  EXPECT_EQ(guard.frees(), 0u);
}

TEST_P(SchedulerFastPath, CancelAndLateClampStayOnTheZeroAllocPath) {
  Simulator sim(GetParam());
  std::uint64_t fuel = 100'000;
  sim.schedule_in(1e-4, Ticker{&sim, 1e-4, &fuel});
  // Late schedule (clamped to now) plus a cancelled future event: both
  // traverse push/pop/release without touching the heap. The first
  // iterations are warm-up (the engines' internal vectors grow to the
  // three-concurrent-events footprint); the guarded tail must be clean.
  auto mix = [&](int iterations) {
    for (int i = 0; i < iterations; ++i) {
      auto h = sim.schedule_in(2e-4, Ticker{&sim, 1e-4, &fuel});
      sim.schedule_at(sim.now() - 1.0, [] {});
      EXPECT_TRUE(sim.cancel(h));
      sim.run_until(sim.now() + 5e-4);
    }
  };
  mix(50);
  ASSERT_GT(sim.events_processed(), 10u);
  ScopedAllocCount guard;
  mix(200);
  EXPECT_EQ(guard.allocs(), 0u) << to_string(sim.engine());
  EXPECT_GT(sim.late_events(), 0u);
  EXPECT_GT(sim.cancelled_events(), 0u);
}

TEST_P(SchedulerFastPath, OversizedCaptureFallsBackToExactlyOneHeapCell) {
  // Control: captures beyond kSimCallbackInlineBytes take InlineFunction's
  // heap cell — one alloc on schedule, one free after dispatch. This both
  // documents the escape hatch and proves the counting allocator observes
  // this binary's scheduler traffic (the zero above is a real zero).
  struct Big {
    unsigned char pad[kSimCallbackInlineBytes + 64];
    bool* hit;
    void operator()() const { *hit = true; }
  };
  static_assert(!Simulator::Callback::fits_inline<Big>());

  Simulator sim(GetParam());
  bool hit = false;
  sim.schedule_in(0.5, [] {});  // warm the arena chunk
  sim.run();
  ScopedAllocCount guard;
  Big big{};
  big.hit = &hit;
  sim.schedule_in(1.0, big);
  const std::uint64_t after_schedule = guard.allocs();
  sim.run();
  EXPECT_TRUE(hit);
  EXPECT_EQ(after_schedule, 1u);
  EXPECT_EQ(guard.allocs(), 1u);
  EXPECT_EQ(guard.frees(), 1u);
}

TEST_P(SchedulerFastPath, ArenaFootprintTracksPendingEvents) {
  // Nodes recycle through the freelist: arena occupancy equals the number
  // of events the queue physically holds at every point, and drops to zero
  // once the simulation drains — 5000 dispatches never outgrow the
  // 16-event steady footprint.
  Simulator sim(GetParam());
  std::uint64_t fuel = 5000;
  for (int i = 0; i < 16; ++i) {
    sim.schedule_in(1e-6 * (i + 1), Ticker{&sim, 1e-5, &fuel});
  }
  sim.run_until(0.001);
  EXPECT_EQ(sim.arena_nodes_in_use(), sim.queued_nodes());
  EXPECT_LE(sim.arena_nodes_in_use(), 16u);
  sim.run();
  EXPECT_EQ(fuel, 0u);
  EXPECT_EQ(sim.arena_nodes_in_use(), 0u);
  EXPECT_EQ(sim.queued_nodes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Engines, SchedulerFastPath,
                         ::testing::Values(SimEngine::kHeap,
                                           SimEngine::kWheel),
                         [](const ::testing::TestParamInfo<SimEngine>& info) {
                           return to_string(info.param);
                         });

}  // namespace
}  // namespace floc
