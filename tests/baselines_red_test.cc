#include "baselines/red_queue.h"

#include <gtest/gtest.h>

namespace floc {
namespace {

RedConfig small_red() {
  RedConfig cfg;
  cfg.buffer_packets = 100;
  cfg.min_th = 10.0;
  cfg.max_th = 40.0;
  cfg.weight = 0.2;  // fast-moving average for tests
  cfg.max_p = 0.1;
  cfg.link_bandwidth = mbps(10);
  return cfg;
}

Packet pkt(FlowId f = 1) {
  Packet p;
  p.flow = f;
  return p;
}

TEST(RedQueue, NoDropsBelowMinThreshold) {
  RedQueue q(small_red());
  for (int i = 0; i < 9; ++i) EXPECT_TRUE(q.enqueue(pkt(), 0.001 * i));
  EXPECT_EQ(q.drops(), 0u);
}

TEST(RedQueue, EarlyDropsBetweenThresholds) {
  RedQueue q(small_red());
  int dropped = 0;
  for (int i = 0; i < 500; ++i) {
    if (!q.enqueue(pkt(), 0.0001 * i)) ++dropped;
    if (q.packet_count() > 30) q.dequeue(0.0001 * i);  // hold ~30 in queue
  }
  EXPECT_GT(dropped, 0);
  EXPECT_GT(q.avg_queue(), small_red().min_th);
}

TEST(RedQueue, HardDropsAboveBuffer) {
  RedQueue q(small_red());
  for (int i = 0; i < 300; ++i) q.enqueue(pkt(), 0.0);
  EXPECT_LE(q.packet_count(), 100u);
}

TEST(RedQueue, DequeueFifo) {
  RedQueue q(small_red());
  q.enqueue(pkt(1), 0.0);
  q.enqueue(pkt(2), 0.0);
  EXPECT_EQ(q.dequeue(0.0)->flow, 1u);
  EXPECT_EQ(q.dequeue(0.0)->flow, 2u);
  EXPECT_FALSE(q.dequeue(0.0).has_value());
}

TEST(RedQueue, AvgDecaysWhenIdle) {
  RedQueue q(small_red());
  for (int i = 0; i < 60; ++i) q.enqueue(pkt(), 0.001 * i);
  const double avg_busy = q.avg_queue();
  while (!q.empty()) q.dequeue(0.1);
  // Long idle period, then one arrival: the average must have decayed.
  q.enqueue(pkt(), 10.0);
  EXPECT_LT(q.avg_queue(), avg_busy);
}

TEST(RedCore, DropProbabilityIncreasesWithQueue) {
  RedConfig cfg = small_red();
  cfg.weight = 1.0;  // instantaneous
  int drops_small = 0, drops_large = 0;
  const int trials = 2000;
  {
    RedCore core(cfg);
    for (int i = 0; i < trials; ++i) drops_small += core.should_drop(15, 0.0);
  }
  {
    RedCore core(cfg);
    for (int i = 0; i < trials; ++i) drops_large += core.should_drop(35, 0.0);
  }
  EXPECT_GT(drops_large, drops_small);
}

TEST(RedCore, GentleRampAboveMaxTh) {
  RedConfig cfg = small_red();
  cfg.weight = 1.0;
  cfg.gentle = true;
  RedCore core(cfg);
  int drops = 0;
  for (int i = 0; i < 500; ++i) drops += core.should_drop(60, 0.0);
  // Between max_th (40) and 2*max_th (80): drop rate well above max_p.
  EXPECT_GT(drops, 100);
  int all = 0;
  for (int i = 0; i < 100; ++i) all += core.should_drop(100, 0.0);
  EXPECT_EQ(all, 100);  // beyond 2*max_th: always drop
}

}  // namespace
}  // namespace floc
