#!/usr/bin/env bash
# Local pre-PR gate: tier-1 tests, the ASan+UBSan suite, the TSan run of the
# multi-threaded (ScenarioRunner) suite, a churn smoke run of the
# fault-injection ablation, a parallel bench smoke (fig06 --jobs 4), and the
# perf-regression gate (perf_suite vs the committed BENCH_perf.json).
# Any failure aborts with nonzero exit.
#
#   scripts/check.sh                 # everything
#   scripts/check.sh --fast          # tier-1 only (skip sanitizers + smokes)
#   scripts/check.sh --preset NAME   # one CMakePresets preset: configure,
#                                    # build, ctest, smokes (CI entry);
#                                    # NAME=tsan runs only `ctest -L tsan`
#
# Benches write their CSV/JSON time-series into the directory they run from;
# every mode ends by scanning the source tree for stray generated artifacts,
# including ones .gitignore would hide.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

# Compiler cache when available (the CI matrix restores it between runs).
LAUNCHER=()
if command -v ccache > /dev/null 2>&1; then
  LAUNCHER=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

check_no_stray_artifacts() {
  echo "== artifact scan: no generated CSV/JSON in the source tree =="
  # `git ls-files -o` WITHOUT --exclude-standard also lists gitignored
  # files, so artifacts .gitignore hides (fig*.csv, ablation*.csv) are
  # still caught. Build trees and editor/tooling caches are exempt.
  # Matched explicitly on top of the generic extensions: exported causal
  # traces (*.trace.json), run manifests (*manifest.json), journal dumps
  # (*.journal.json), alert histories (*.alerts.json), incident bundles
  # (*.incident.json), Prometheus text scrapes (*.prom), metric exports
  # (*.metrics.csv/.json), and perf reports (BENCH_*.json) — the
  # observability artifacts the benches write. The committed repo-root BENCH_perf.json
  # baseline is tracked, so `git ls-files -o` (untracked only) never flags
  # it; only freshly generated copies outside the build tree are strays.
  local stray
  stray="$(git ls-files -o \
    | grep -vE '^(build[^/]*|\.cache|\.ccache|\.vscode|\.idea)/' \
    | grep -vE '^compile_commands\.json$' \
    | grep -E '(\.trace\.json|manifest\.json|\.journal\.json|\.alerts\.json|\.incident\.json|\.prom|BENCH_[^/]*\.json|\.metrics\.(csv|json)|\.(csv|json))$' \
    || true)"
  if [[ -n "$stray" ]]; then
    echo "error: generated artifacts left in the source tree:" >&2
    echo "$stray" >&2
    echo "hint: run benches from inside the build directory" >&2
    exit 1
  fi
}

churn_smoke() {
  local bindir="$1"
  echo "== churn smoke: fault-injection ablation, short horizon =="
  # Run from the build tree so the time-series CSVs land there.
  (cd "$bindir" && ./bench/ablation_churn --quick)
}

parallel_bench_smoke() {
  local bindir="$1"
  echo "== parallel bench smoke: fig06 sweep on a 4-wide pool =="
  # Exercises the ScenarioRunner path end-to-end; the run manifest records
  # jobs plus per-run derived seeds and wall times.
  (cd "$bindir" && ./bench/fig06_attack_confinement --quick --jobs 4)
}

adaptive_smoke() {
  local bindir="$1"
  echo "== adaptive-adversary smoke: hardening scorecard on a 4-wide pool =="
  # Closed-loop attackers vs the hardening stack; the bench exits nonzero if
  # any acceptance gate (evasion, confinement, flash-crowd FP) fails. Its
  # per-case CSVs and journal dumps (ablation_adaptive_*.csv / *.journal.json)
  # land in the build tree and are covered by the stray-artifact scan.
  (cd "$bindir" && ./bench/ablation_adaptive --quick --jobs 4)
}

state_smoke() {
  local bindir="$1"
  echo "== state-exhaustion smoke: bounded-table scorecard on a 4-wide pool =="
  # Identity-churn attacker vs capacity budgets + overload mode; the bench
  # exits nonzero if any gate fails (legit goodput, table bounds, eviction
  # re-latch, storm alert). Artifacts (ablation_state_exhaust_*.csv /
  # *.journal.json / *.alerts.json / *.prom) land in the build tree.
  (cd "$bindir" && ./bench/ablation_state_exhaust --quick --jobs 4)
}

perf_gate() {
  local bindir="$1"
  echo "== perf gate: canonical suite vs committed BENCH_perf.json =="
  # Runs the canonical perf suite (--quick) and diffs the fresh report
  # against the committed repo-root baseline. Only machine-portable metrics
  # (allocation counts, floc-vs-droptail ratios) gate by default; absolute
  # wall-clock numbers are trajectory-only, so the gate is meaningful on
  # hardware other than the baseline's. Exit 1 = gated regression; exit 2 =
  # schema drift (refresh the baseline: run perf_suite and commit the JSON).
  (cd "$bindir" && ./bench/perf_suite --quick --out BENCH_perf.json)
  "$bindir"/bench/perf_compare BENCH_perf.json "$bindir"/BENCH_perf.json
}

if [[ "${1:-}" == "--preset" ]]; then
  PRESET="${2:?usage: scripts/check.sh --preset <name>}"
  echo "== preset $PRESET: configure + build + ctest =="
  cmake --preset "$PRESET" "${LAUNCHER[@]}" > /dev/null
  cmake --build --preset "$PRESET" -j "$JOBS" > /dev/null
  ctest --preset "$PRESET" -j "$JOBS"
  # The tsan preset's ctest already ran the label-filtered multi-threaded
  # suite (runner + parallel scenario/telemetry worlds); the serial churn
  # smoke would only re-run single-threaded code an order of magnitude
  # slower, so the smokes stay on the non-tsan legs.
  if [[ "$PRESET" != "tsan" ]]; then
    churn_smoke "build-$PRESET"
    if [[ "$PRESET" == "release" ]]; then
      parallel_bench_smoke "build-$PRESET"
      adaptive_smoke "build-$PRESET"
      state_smoke "build-$PRESET"
      perf_gate "build-$PRESET"
    fi
  fi
  check_no_stray_artifacts
  echo "== preset $PRESET passed =="
  exit 0
fi

echo "== tier-1: release build + full ctest =="
cmake -B build -S . "${LAUNCHER[@]}" > /dev/null
cmake --build build -j "$JOBS" > /dev/null
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "${1:-}" == "--fast" ]]; then
  echo "== fast mode: skipping sanitize + churn smoke =="
  check_no_stray_artifacts
  exit 0
fi

echo "== sanitize: ASan+UBSan suite (ctest preset) =="
cmake --preset sanitize "${LAUNCHER[@]}" > /dev/null
cmake --build --preset sanitize -j "$JOBS" > /dev/null
ctest --preset sanitize -j "$JOBS"

echo "== tsan: ThreadSanitizer on the multi-threaded (runner) suite =="
cmake --preset tsan "${LAUNCHER[@]}" > /dev/null
cmake --build --preset tsan -j "$JOBS" > /dev/null
ctest --preset tsan -j "$JOBS"

churn_smoke build
parallel_bench_smoke build
adaptive_smoke build
state_smoke build
perf_gate build
check_no_stray_artifacts

echo "== all checks passed =="
