#!/usr/bin/env bash
# Local pre-PR gate: tier-1 tests, the ASan+UBSan suite, and a churn smoke
# run of the fault-injection ablation. Any failure aborts with nonzero exit.
#
#   scripts/check.sh            # everything
#   scripts/check.sh --fast     # tier-1 only (skip sanitizers + churn smoke)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "== tier-1: release build + full ctest =="
cmake -B build -S . > /dev/null
cmake --build build -j "$JOBS" > /dev/null
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "$FAST" == "1" ]]; then
  echo "== fast mode: skipping sanitize + churn smoke =="
  exit 0
fi

echo "== sanitize: ASan+UBSan suite (ctest preset) =="
cmake --preset sanitize > /dev/null
cmake --build --preset sanitize -j "$JOBS" > /dev/null
ctest --preset sanitize -j "$JOBS"

echo "== churn smoke: fault-injection ablation, short horizon =="
./build/bench/ablation_churn --quick

echo "== all checks passed =="
